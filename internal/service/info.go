package service

// GET /v1/info: the daemon's effective configuration in one document,
// so multi-node debugging ("which flags is node c actually running
// with, and what does it think the fleet looks like?") doesn't require
// flag archaeology across process tables.

import (
	"net/http"
	"runtime"
	"runtime/debug"
)

// infoDoc is the /v1/info response shape.
type infoDoc struct {
	Go      string            `json:"go"`
	Module  string            `json:"module,omitempty"`
	Version string            `json:"version,omitempty"`
	VCS     map[string]string `json:"vcs,omitempty"`
	Flags   map[string]string `json:"flags,omitempty"`
	Limits  infoLimits        `json:"limits"`
	Cache   infoCache         `json:"cache"`
	Cluster *infoCluster      `json:"cluster,omitempty"`
}

type infoLimits struct {
	Workers          int   `json:"workers"`
	QueueDepth       int   `json:"queue_depth"`
	GenWorkers       int   `json:"gen_workers"`
	RequestTimeoutMS int64 `json:"request_timeout_ms"`
	MaxTileEdge      int   `json:"max_tile_edge"`
	MaxTileSamples   int   `json:"max_tile_samples"`
	TileEdge         int   `json:"tile_edge"`
	MaxLevel         int   `json:"max_level"`
	MaxScenes        int   `json:"max_scenes"`
	Draining         bool  `json:"draining"`
}

type infoCache struct {
	TileBytes     int64 `json:"tile_bytes"`
	PinnedBytes   int64 `json:"pinned_bytes"`
	PinLevel      int   `json:"pin_level"`
	MaxSeedGens   int   `json:"max_seed_gens"`
	Scenes        int   `json:"scenes"`
	Entries       int   `json:"entries"`
	UsedBytes     int64 `json:"used_bytes"`
	PrefetchQueue int   `json:"prefetch_queue"`
}

type infoCluster struct {
	Self  string `json:"self"`
	Epoch uint64 `json:"epoch"`
	Peers int    `json:"peers"`
	Alive int    `json:"alive"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	doc := infoDoc{
		Go:    runtime.Version(),
		Flags: s.cfg.Flags,
		Limits: infoLimits{
			Workers:          s.cfg.Workers,
			QueueDepth:       s.cfg.QueueDepth,
			GenWorkers:       s.cfg.GenWorkers,
			RequestTimeoutMS: s.cfg.RequestTimeout.Milliseconds(),
			MaxTileEdge:      s.cfg.MaxTileEdge,
			MaxTileSamples:   s.cfg.MaxTileSamples,
			TileEdge:         s.cfg.TileEdge,
			MaxLevel:         s.cfg.MaxLevel,
			MaxScenes:        s.cfg.MaxScenes,
			Draining:         s.draining.Load(),
		},
		Cache: infoCache{
			TileBytes:     s.cfg.CacheBytes,
			PinnedBytes:   s.cfg.PinCacheBytes,
			PinLevel:      s.cfg.PinLevel,
			MaxSeedGens:   s.cfg.MaxSeedGens,
			Scenes:        s.reg.len(),
			Entries:       s.cache.len(),
			UsedBytes:     s.cache.bytes(),
			PrefetchQueue: s.cfg.PrefetchQueue,
		},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		doc.Module = bi.Main.Path
		doc.Version = bi.Main.Version
		vcs := map[string]string{}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				vcs[kv.Key] = kv.Value
			}
		}
		if len(vcs) > 0 {
			doc.VCS = vcs
		}
	}
	if s.cluster != nil {
		doc.Cluster = &infoCluster{
			Self:  s.cluster.Self(),
			Epoch: s.cluster.Epoch(),
			Peers: s.cluster.Size(),
			Alive: s.cluster.AliveCount(),
		}
	}
	writeJSON(w, http.StatusOK, doc)
}
