package service

// Cluster-mode integration tests: real two-node fleets over httptest,
// plus fake owners for each peer-failure path (down at startup, dying
// mid-request, shedding). Probers are never started — tests set
// membership and liveness explicitly, so nothing here depends on
// timers.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"roughsurface/internal/cluster"
	"roughsurface/internal/par"
)

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b, err := readAllErr(resp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readAllErr(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// fleetNode is one member of an in-process test fleet.
type fleetNode struct {
	s  *Server
	ts *httptest.Server
	cl *cluster.Cluster
}

// testFleet boots one real clustered Server per name and points them
// at each other. The prober is not started: liveness changes only via
// MarkAlive or the request path.
func testFleet(t *testing.T, names []string, cfg Config) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, len(names))
	for i, name := range names {
		cl := cluster.New(name, nil, cluster.Options{})
		c := cfg
		c.Cluster = cl
		s := New(c)
		ts := httptest.NewServer(s.Handler())
		nodes[i] = &fleetNode{s: s, ts: ts, cl: cl}
	}
	peers := make([]cluster.Peer, len(names))
	for i, n := range nodes {
		peers[i] = cluster.Peer{Name: names[i], URL: n.ts.URL}
	}
	for _, n := range nodes {
		n.cl.SetPeers(peers)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			n.s.Close()
			n.cl.Close()
		}
	})
	return nodes
}

// newClusteredServer boots one real clustered Server whose peer set is
// itself plus the given (possibly fake) peers.
func newClusteredServer(t *testing.T, name string, others []cluster.Peer, cfg Config) (*Server, *httptest.Server, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New(name, nil, cluster.Options{})
	cfg.Cluster = cl
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close(); cl.Close() })
	cl.SetPeers(append([]cluster.Peer{{Name: name, URL: ts.URL}}, others...))
	return s, ts, cl
}

// testWin is the window every cluster test requests.
var testWin = window{x0: -16, y0: -16, nx: 32, ny: 32}

// seedOwnedBy scans seeds from start until the tile key for testWin
// hashes to the wanted owner under cl's current view.
func seedOwnedBy(t *testing.T, cl *cluster.Cluster, id, owner string, start uint64) uint64 {
	t.Helper()
	for seed := start; seed <= start+512; seed++ {
		key := cacheKey(id, 0, seed, testWin, "f32", "f64")
		if p, ok := cl.Owner(key); ok && p.Name == owner {
			return seed
		}
	}
	t.Fatalf("no seed in %d..%d hashes to owner %s", start, start+512, owner)
	return 0
}

func tilePath(id string, seed uint64) string {
	return fmt.Sprintf("/v1/scene/%s/tile/%d,%d,%dx%d?seed=%d",
		id, testWin.x0, testWin.y0, testWin.nx, testWin.ny, seed)
}

// getTileResp fetches a tile and returns the full response plus body.
func getTileResp(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	return resp, body
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return string(readAll(t, resp))
}

// TestClusterProxyByteIdentical is the sharding contract: a tile
// fetched through a non-owner is proxied to the owning shard and is
// byte-identical to both the owner's direct response and a standalone
// server's render. The proxied body is cached locally, so the repeat
// fetch is a local hit.
func TestClusterProxyByteIdentical(t *testing.T) {
	nodes := testFleet(t, []string{"a", "b"}, Config{Workers: 2})
	a, b := nodes[0], nodes[1]
	id := postScene(t, a.ts, fixtureHomog)
	seed := seedOwnedBy(t, a.cl, id, "b", 1)

	resp, viaA := getTileResp(t, a.ts, tilePath(id, seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied tile: %d %s", resp.StatusCode, viaA)
	}
	if got := resp.Header.Get("X-RRS-Shard"); got != "b" {
		t.Errorf("X-RRS-Shard = %q, want b", got)
	}
	if got := resp.Header.Get("X-RRS-Served-By"); got != "b" {
		t.Errorf("X-RRS-Served-By = %q, want b", got)
	}

	direct, _ := getTile(t, b.ts, tilePath(id, seed))
	_, single := testServer(t, Config{Workers: 2})
	sid := postScene(t, single, fixtureHomog)
	if sid != id {
		t.Fatalf("standalone scene id %s, fleet %s", sid, id)
	}
	alone, _ := getTile(t, single, tilePath(id, seed))
	if string(viaA) != string(direct) || string(viaA) != string(alone) {
		t.Fatal("proxied tile bytes differ from owner/standalone render")
	}

	if m := metricsText(t, a.ts); !strings.Contains(m, `rrsd_cluster_proxy_total{peer="b",result="miss"}`) {
		t.Errorf("node a metrics missing proxy miss counter:\n%s", m)
	}
	resp, again := getTileResp(t, a.ts, tilePath(id, seed))
	if string(again) != string(viaA) || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat fetch through non-owner: X-Cache=%q, want local hit with same bytes",
			resp.Header.Get("X-Cache"))
	}
}

// TestClusterFanoutReplicates: registering on one node makes the scene
// servable on every node, and the registrar reports the fan-out count.
func TestClusterFanoutReplicates(t *testing.T) {
	nodes := testFleet(t, []string{"a", "b"}, Config{Workers: 1})
	a, b := nodes[0], nodes[1]

	resp, err := http.Post(a.ts.URL+"/v1/scene", "application/json", strings.NewReader(fixtureHomog))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID         string `json:"id"`
		Replicated int    `json:"replicated"`
	}
	if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || doc.Replicated != 1 {
		t.Fatalf("register: %d, replicated %d; want 201 with 1", resp.StatusCode, doc.Replicated)
	}

	got, err := http.Get(b.ts.URL + "/v1/scene/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, got); got.StatusCode != http.StatusOK {
		t.Fatalf("scene on peer after fan-out: %d %s", got.StatusCode, body)
	}
}

// TestClusterFallbackOwnerDown: the owner was dead before the request
// (connection refused). The non-owner renders locally, counts a
// fallback_down for that peer, and marks it dead so the next request
// routes straight to self.
func TestClusterFallbackOwnerDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	deadURL := dead.URL
	dead.Close()

	_, ts, cl := newClusteredServer(t, "a", []cluster.Peer{{Name: "b", URL: deadURL}}, Config{Workers: 2})
	id := postScene(t, ts, fixtureHomog)
	seed := seedOwnedBy(t, cl, id, "b", 1)

	resp, body := getTileResp(t, ts, tilePath(id, seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tile with dead owner: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-RRS-Served-By"); got != "a" {
		t.Errorf("X-RRS-Served-By = %q, want local fallback by a", got)
	}
	if m := metricsText(t, ts); !strings.Contains(m, `rrsd_cluster_fallback_total{peer="b",reason="down"}`) {
		t.Errorf("metrics missing fallback_down counter:\n%s", m)
	}
	if n := cl.AliveCount(); n != 1 {
		t.Errorf("alive count after transport error = %d, want 1 (b marked dead)", n)
	}
	// The fan-out to the dead peer failed too, and was counted.
	if m := metricsText(t, ts); !strings.Contains(m, `rrsd_cluster_fanout_errors_total{peer="b"}`) {
		t.Errorf("metrics missing fanout error counter:\n%s", m)
	}
	// With b dead, ownership of a fresh key collapses onto self: no
	// proxy attempt, a plain local render. Start past the
	// already-cached seed — a cache hit never consults the shard map.
	seed2 := seedOwnedBy(t, cl, id, "a", seed+1)
	resp, _ = getTileResp(t, ts, tilePath(id, seed2))
	if got := resp.Header.Get("X-RRS-Shard"); got != "a" {
		t.Errorf("post-death shard = %q, want a", got)
	}
}

// TestClusterFallbackOwnerDiesMidRequest: the owner accepts the
// connection, then aborts it mid-response. Same contract as a dead
// owner: local render, fallback_down, peer marked dead.
func TestClusterFallbackOwnerDiesMidRequest(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/tile/") {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(owner.Close)

	_, ts, cl := newClusteredServer(t, "a", []cluster.Peer{{Name: "b", URL: owner.URL}}, Config{Workers: 2})
	id := postScene(t, ts, fixtureHomog)
	seed := seedOwnedBy(t, cl, id, "b", 1)

	resp, body := getTileResp(t, ts, tilePath(id, seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tile with aborting owner: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-RRS-Served-By"); got != "a" {
		t.Errorf("X-RRS-Served-By = %q, want local fallback by a", got)
	}
	if m := metricsText(t, ts); !strings.Contains(m, `rrsd_cluster_fallback_total{peer="b",reason="down"}`) {
		t.Errorf("metrics missing fallback_down counter:\n%s", m)
	}
	if n := cl.AliveCount(); n != 1 {
		t.Errorf("alive count after mid-request abort = %d, want 1", n)
	}
}

// TestClusterFallbackOwnerSheds: the owner answers 429. The non-owner
// renders locally and counts fallback_shed — but the owner stays
// alive: it is busy, not gone, and must keep its ownership.
func TestClusterFallbackOwnerSheds(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/tile/") {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(owner.Close)

	_, ts, cl := newClusteredServer(t, "a", []cluster.Peer{{Name: "b", URL: owner.URL}}, Config{Workers: 2})
	id := postScene(t, ts, fixtureHomog)
	seed := seedOwnedBy(t, cl, id, "b", 1)

	resp, body := getTileResp(t, ts, tilePath(id, seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tile with shedding owner: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-RRS-Served-By"); got != "a" {
		t.Errorf("X-RRS-Served-By = %q, want local fallback by a", got)
	}
	if m := metricsText(t, ts); !strings.Contains(m, `rrsd_cluster_fallback_total{peer="b",reason="shed"}`) {
		t.Errorf("metrics missing fallback_shed counter:\n%s", m)
	}
	if n := cl.AliveCount(); n != 2 {
		t.Errorf("alive count after shed = %d, want 2 (shedding is not death)", n)
	}
}

// TestClusterDrainRejectsPeerTraffic: a draining node sheds proxied
// requests (503 + Retry-After) and reads unhealthy, while direct
// clients are still served until the listener closes.
func TestClusterDrainRejectsPeerTraffic(t *testing.T) {
	s, ts, _ := newClusteredServer(t, "a", nil, Config{Workers: 2})
	id := postScene(t, ts, fixtureHomog)
	s.BeginDrain()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+tilePath(id, 1), nil)
	req.Header.Set(headerPeer, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("peer-marked request while draining: %d (Retry-After %q) %s",
			resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hz)
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hz.StatusCode)
	}

	direct, bodyDirect := getTileResp(t, ts, tilePath(id, 1))
	if direct.StatusCode != http.StatusOK || len(bodyDirect) == 0 {
		t.Errorf("direct client while draining: %d, want 200", direct.StatusCode)
	}
}

// TestClusterEndpointAndInfo: /v1/cluster serves the epoch-stamped
// membership view and /v1/info reports the fleet summary; both 404 /
// omit it on an unclustered daemon.
func TestClusterEndpointAndInfo(t *testing.T) {
	nodes := testFleet(t, []string{"a", "b"}, Config{Workers: 1, Flags: map[string]string{"workers": "1"}})
	a := nodes[0]

	resp, err := http.Get(a.ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var snap cluster.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Self != "a" || len(snap.Peers) != 2 || snap.Epoch == 0 {
		t.Errorf("cluster snapshot: %+v", snap)
	}

	resp, err = http.Get(a.ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Go      string            `json:"go"`
		Flags   map[string]string `json:"flags"`
		Cluster *struct {
			Self  string `json:"self"`
			Peers int    `json:"peers"`
			Alive int    `json:"alive"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(readAll(t, resp), &info); err != nil {
		t.Fatal(err)
	}
	if info.Go == "" || info.Flags["workers"] != "1" {
		t.Errorf("info basics: %+v", info)
	}
	if info.Cluster == nil || info.Cluster.Self != "a" || info.Cluster.Peers != 2 || info.Cluster.Alive != 2 {
		t.Errorf("info cluster section: %+v", info.Cluster)
	}

	_, single := testServer(t, Config{Workers: 1})
	resp, err = http.Get(single.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/cluster unclustered = %d, want 404", resp.StatusCode)
	}
}

// TestClusterConcurrentProxySingleflight: concurrent fetches of one
// not-yet-cached tile through the non-owner all succeed with identical
// bytes — the singleflight path under the race detector.
func TestClusterConcurrentProxySingleflight(t *testing.T) {
	nodes := testFleet(t, []string{"a", "b"}, Config{Workers: 2})
	a := nodes[0]
	id := postScene(t, a.ts, fixtureHomog)
	seed := seedOwnedBy(t, a.cl, id, "b", 1)

	const n = 8
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var mu sync.Mutex
	par.ForEach(n, n, func(i int) {
		resp, err := http.Get(a.ts.URL + tilePath(id, seed))
		if err != nil {
			return
		}
		b, err := readAllErr(resp)
		if err != nil {
			return
		}
		mu.Lock()
		bodies[i], codes[i] = b, resp.StatusCode
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
}
