// Package service implements rrsd, the tile-serving surface-generation
// daemon. The paper's convolution method generates "arbitrarily long or
// wide" surfaces by successive windowed computations — any rectangular
// window of the infinite deterministic surface is computable on demand
// from (scene, seed) alone — which is exactly a map-tile server's
// contract. The daemon exposes:
//
//	POST /v1/scene                        register a scene, get its content-hash ID
//	GET  /v1/scene/{id}                   canonical scene JSON
//	GET  /v1/scene/{id}/tile/{win}        a free window; win = "x0,y0,NXxNY",
//	                                      ?seed=S&format=f32|png&precision=f32|f64
//	GET  /v1/scene/{id}/tile/{z}/{x},{y}  pyramid tile: fixed TileEdge² window
//	                                      on level z's lattice (spacing ×2^z);
//	                                      z=0 matches the free-window route
//	GET  /healthz                         liveness
//	GET  /metrics                         Prometheus text metrics
//
// Layering (DESIGN.md §11, §14): scene registry (kernel design, once
// per scene and pyramid level) → per-(level, seed) generator cache →
// byte-bounded two-tier tile LRU (coarse levels pinned) → bounded
// worker pool with queue-depth admission control, plus a subordinate
// best-effort neighbor prefetcher.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"roughsurface/internal/cluster"
	"roughsurface/internal/core"
	"roughsurface/internal/par"
)

// Config tunes the daemon. The zero value is usable: every field has a
// production-shaped default applied by New.
type Config struct {
	// Workers is the tile-rendering pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds tasks queued beyond the executing workers
	// (default 2×Workers). Overflow is shed with 429.
	QueueDepth int
	// RequestTimeout is the per-tile deadline covering queue wait and
	// render (default 15s — first tiles of a scene pay kernel design).
	RequestTimeout time.Duration
	// CacheBytes bounds the tile LRU (default 256 MiB; < 0 disables).
	CacheBytes int64
	// MaxTileEdge and MaxTileSamples bound a single tile request
	// (defaults 4096 and 4M samples = 16 MiB of f32).
	MaxTileEdge    int
	MaxTileSamples int
	// MaxScenes bounds the registry (default 1024).
	MaxScenes int
	// GenWorkers is the intra-tile parallelism of one render (default
	// 1: the pool already parallelizes across requests, and one worker
	// per render keeps tail latency flat under load).
	GenWorkers int
	// MaxSeedGens bounds the per-scene cache of per-(level, seed)
	// generators (default 32).
	MaxSeedGens int
	// TileEdge is the fixed edge of pyramid-route tiles (default 256,
	// clamped to MaxTileEdge/MaxTileSamples).
	TileEdge int
	// MaxLevel bounds the pyramid depth served by /tile/{z}/...
	// (default 8, capped at core.MaxPyramidLevel).
	MaxLevel int
	// PinLevel is the coarsest-tier admission threshold: tiles at
	// levels >= PinLevel are charged to the pinned cache budget
	// (default 2); negative disables pinning. Level 0 cannot be pinned
	// — pinning everything is the same as not pinning.
	PinLevel int
	// PinCacheBytes bounds the pinned tile tier (default 32 MiB; <= 0
	// folds pinned tiles into the main budget).
	PinCacheBytes int64
	// PrefetchWorkers sizes the background neighbor-prefetch pool
	// (default 1 — prefetch is strictly subordinate to foreground).
	PrefetchWorkers int
	// PrefetchQueue bounds queued prefetch jobs (default 32; negative
	// disables prefetching entirely).
	PrefetchQueue int
	// Cluster, when non-nil, makes this node one shard of a fleet:
	// tile requests route to their owning shard first (DESIGN.md §16)
	// and scene registrations fan out to every peer. The Server does
	// not own the Cluster's lifecycle — the caller Starts and Closes it.
	Cluster *cluster.Cluster
	// FanoutTimeout bounds the whole scene-registration fan-out
	// (default 5s).
	FanoutTimeout time.Duration
	// Flags echoes the command-line flags in effect, verbatim, on
	// GET /v1/info. Purely informational.
	Flags map[string]string
	// AccessLog receives one line per request when non-nil.
	AccessLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = par.DefaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxTileEdge <= 0 {
		c.MaxTileEdge = 4096
	}
	if c.MaxTileSamples <= 0 {
		c.MaxTileSamples = 4 << 20
	}
	if c.MaxScenes <= 0 {
		c.MaxScenes = 1024
	}
	if c.GenWorkers <= 0 {
		c.GenWorkers = 1
	}
	if c.MaxSeedGens <= 0 {
		c.MaxSeedGens = 32
	}
	if c.TileEdge <= 0 {
		c.TileEdge = 256
	}
	if c.TileEdge > c.MaxTileEdge {
		c.TileEdge = c.MaxTileEdge
	}
	for c.TileEdge*c.TileEdge > c.MaxTileSamples && c.TileEdge > 1 {
		c.TileEdge /= 2
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 8
	}
	if c.MaxLevel > core.MaxPyramidLevel {
		c.MaxLevel = core.MaxPyramidLevel
	}
	if c.PinLevel == 0 {
		c.PinLevel = 2
	}
	if c.PinCacheBytes == 0 {
		c.PinCacheBytes = 32 << 20
	}
	if c.PrefetchWorkers <= 0 {
		c.PrefetchWorkers = 1
	}
	if c.PrefetchQueue == 0 {
		c.PrefetchQueue = 32
	}
	if c.FanoutTimeout <= 0 {
		c.FanoutTimeout = 5 * time.Second
	}
	return c
}

// Server is the daemon's state: registry, caches, worker pool, metrics.
// Create with New, serve Handler() from an http.Server, and Close after
// http.Server.Shutdown has drained the handlers (shutdown ordering is
// documented in DESIGN.md §11).
type Server struct {
	cfg      Config
	reg      *registry
	cache    *tileCache
	pool     *par.Pool
	prefetch *par.Pool // nil when PrefetchQueue < 0
	met      *metrics
	mux      *http.ServeMux

	// Cluster state (nil/zero for a single-node daemon).
	cluster    *cluster.Cluster
	peerClient *http.Client
	flightMu   sync.Mutex
	flights    map[string]*flight // singleflight over proxied tile keys
	draining   atomic.Bool
}

// New builds a Server and starts its worker pools.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(cfg.MaxScenes),
		cache:   newTileCache(cfg.CacheBytes, cfg.PinCacheBytes),
		pool:    par.NewPool(cfg.Workers, cfg.QueueDepth),
		met:     newMetrics(),
		cluster: cfg.Cluster,
		flights: make(map[string]*flight),
	}
	if s.cluster != nil {
		// No client-level timeout: every proxied call carries a context
		// deadline, and a fleet-internal client reusing connections is
		// the whole point.
		s.peerClient = &http.Client{}
	}
	if cfg.PrefetchQueue > 0 {
		s.prefetch = par.NewPool(cfg.PrefetchWorkers, cfg.PrefetchQueue)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scene", s.instrument("scene_post", s.handleScenePost))
	mux.HandleFunc("GET /v1/scene/{id}", s.instrument("scene_get", s.handleSceneGet))
	mux.HandleFunc("GET /v1/scene/{id}/tile/{win}", s.instrument("tile", s.handleTile))
	mux.HandleFunc("GET /v1/scene/{id}/tile/{z}/{xy}", s.instrument("tilez", s.handleTileZ))
	mux.HandleFunc("GET /v1/cluster", s.instrument("cluster", s.handleCluster))
	mux.HandleFunc("GET /v1/info", s.instrument("info", s.handleInfo))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s
}

// BeginDrain flips the daemon into drain mode ahead of an HTTP
// shutdown: /healthz turns 503 (so peer probers route new traffic
// away) and proxied tile requests from peers are refused immediately
// with 503 + Retry-After — the peer falls back to a local render
// instead of queueing work on a node that is about to stop. Direct
// client requests keep being served until the listener drains: they
// have nowhere else to go.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close joins the worker pools, draining any queued renders. The
// prefetch pool closes first — its jobs are disposable and closing it
// stops new background work before the foreground pool drains. Call
// only after the HTTP server has stopped delivering requests — a
// handler submitting to a closed pool would be shed with 429.
func (s *Server) Close() {
	if s.prefetch != nil {
		s.prefetch.Close()
	}
	s.pool.Close()
}

// instrument wraps a handler with in-flight/latency/request metrics and
// access logging. The route label is static per pattern so metric
// cardinality stays bounded no matter what clients request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.inflight.Add(-1)
		dur := time.Since(start)
		s.met.countRequest(route, rec.code)
		if route == "tile" || route == "tilez" {
			s.met.latency.observe(dur)
		}
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Printf("%s %s %d %dB %s", r.Method, r.URL.RequestURI(), rec.code, rec.bytes, dur)
		}
	}
}

// statusRecorder captures the status code and body size for metrics and
// access logs.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// maxSceneBody bounds a scene document upload.
const maxSceneBody = 1 << 20

func (s *Server) handleScenePost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSceneBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("scene body: %v", err))
		return
	}
	entry, created, err := s.reg.register(body, s.cfg.GenWorkers, s.cfg.MaxSeedGens)
	if err != nil {
		if err == errRegistryFull {
			writeError(w, http.StatusInsufficientStorage,
				fmt.Sprintf("scene registry full (%d scenes)", s.reg.len()))
			return
		}
		// Validation errors carry field paths (core: regions[2].spectrum.clx: ...).
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	doc := map[string]any{"id": entry.ID, "created": created}
	if s.cluster != nil && r.Header.Get(headerReplicated) == "" {
		// First-hand registration on a fleet node: replicate the
		// canonical JSON to every peer so any node can serve this
		// scene's tiles. Replicated posts carry headerReplicated and do
		// not fan out again.
		doc["replicated"] = s.fanoutScene(r.Context(), entry.Canonical)
	}
	writeJSON(w, code, doc)
}

func (s *Server) handleSceneGet(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scene id")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(entry.Canonical)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		// Draining reads as unhealthy so peer probers (and any load
		// balancer) steer traffic away before the listener closes.
		writePlain(w, http.StatusServiceUnavailable, "draining\n")
		return
	}
	writePlain(w, http.StatusOK, "ok\n")
}

func writePlain(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	_, _ = io.WriteString(w, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.met.writePrometheus(w, append([]gaugeFn{
		{"rrsd_queue_depth", "Renders accepted but not yet started.", func() int64 { return int64(s.pool.QueueDepth()) }},
		{"rrsd_scenes", "Scenes registered.", func() int64 { return int64(s.reg.len()) }},
		{"rrsd_tile_cache_bytes", "Bytes held by the tile LRU (both tiers).", s.cache.bytes},
		{"rrsd_tile_cache_entries", "Entries held by the tile LRU (both tiers).", func() int64 { return int64(s.cache.len()) }},
		{"rrsd_tile_cache_pinned_bytes", "Bytes held by the pinned (coarse-level) tier.", s.cache.pinnedBytes},
		{"rrsd_tile_cache_pinned_entries", "Entries held by the pinned (coarse-level) tier.", func() int64 { return int64(s.cache.pinnedLen()) }},
		{"rrsd_prefetch_queue_depth", "Prefetch jobs accepted but not yet started.", func() int64 {
			if s.prefetch == nil {
				return 0
			}
			return int64(s.prefetch.QueueDepth())
		}},
	}, s.clusterGauges()...))
}

// clusterGauges contributes the fleet-view gauges when clustered.
func (s *Server) clusterGauges() []gaugeFn {
	if s.cluster == nil {
		return nil
	}
	return []gaugeFn{
		{"rrsd_cluster_epoch", "Local membership-view epoch (bumps on every liveness or set change).", func() int64 { return int64(s.cluster.Epoch()) }},
		{"rrsd_cluster_peers", "Fleet size in the current peer set (including self).", func() int64 { return int64(s.cluster.Size()) }},
		{"rrsd_cluster_peers_alive", "Peers currently passing health probes (including self).", func() int64 { return int64(s.cluster.AliveCount()) }},
		{"rrsd_draining", "1 while the daemon refuses proxied peer traffic ahead of shutdown.", func() int64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		}},
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
