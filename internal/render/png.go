package render

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"roughsurface/internal/grid"
)

// PNG writes g as a terrain-colormapped PNG, sharing the palette and
// symmetric normalization of PPM (heights scaled by the max |z| so zero
// stays at the shoreline color) and the same orientation: +y up, so
// image row 0 is the grid's top row. The stdlib encoder is
// deterministic for identical pixels, which the tile service relies on
// for byte-identical cached and uncached responses.
func PNG(w io.Writer, g *grid.Grid) error {
	min, max := g.MinMax()
	limit := math.Max(math.Abs(min), math.Abs(max))
	if limit == 0 {
		limit = 1
	}
	img := image.NewNRGBA(image.Rect(0, 0, g.Nx, g.Ny))
	for iy := 0; iy < g.Ny; iy++ {
		row := g.Row(iy)
		for ix := 0; ix < g.Nx; ix++ {
			r, gg, b := terrainColor(row[ix] / limit)
			img.SetNRGBA(ix, g.Ny-1-iy, color.NRGBA{R: r, G: gg, B: b, A: 255})
		}
	}
	return png.Encode(w, img)
}

// SavePNG writes a terrain-colormapped PNG file.
func SavePNG(path string, g *grid.Grid) error {
	return saveWith(path, g, PNG)
}
