// Package render turns height grids into inspectable artifacts: ASCII
// heat maps for terminals and logs, and binary PGM/PPM images matching
// the paper's figure plots (heightmap renderings of the same data the
// figures show as 3D surfaces).
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"roughsurface/internal/grid"
)

// asciiRampChars orders glyphs by visual density.
const asciiRampChars = " .:-=+*#%@"

// ASCII writes an ASCII heat map of g, downsampled to at most maxW
// columns (rows follow at half the column resolution to compensate for
// character aspect). Scaling is min..max of the grid.
func ASCII(w io.Writer, g *grid.Grid, maxW int) error {
	if maxW < 2 {
		maxW = 2
	}
	stepX := (g.Nx + maxW - 1) / maxW
	if stepX < 1 {
		stepX = 1
	}
	stepY := stepX * 2
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %dx%d surface, height range [%.4g, %.4g]\n", g.Nx, g.Ny, min, max)
	ramp := []byte(asciiRampChars)
	for iy := 0; iy < g.Ny; iy += stepY {
		for ix := 0; ix < g.Nx; ix += stepX {
			v := (g.At(ix, iy) - min) / span
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if err := bw.WriteByte(ramp[idx]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PGM writes g as a binary 8-bit PGM (grayscale) image, heights scaled
// min..max to 0..255.
func PGM(w io.Writer, g *grid.Grid) error {
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.Nx, g.Ny)
	for iy := g.Ny - 1; iy >= 0; iy-- { // image rows top-down, y up
		for ix := 0; ix < g.Nx; ix++ {
			v := (g.At(ix, iy) - min) / span
			if err := bw.WriteByte(uint8(v*255 + 0.5)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// PPM writes g as a binary PPM with a blue–white–brown terrain colormap
// diverging around zero height, which makes ponds and dunes legible in
// the inhomogeneous figures.
func PPM(w io.Writer, g *grid.Grid) error {
	min, max := g.MinMax()
	limit := math.Max(math.Abs(min), math.Abs(max))
	if limit == 0 {
		limit = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", g.Nx, g.Ny)
	for iy := g.Ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.Nx; ix++ {
			r, gr, b := terrainColor(g.At(ix, iy) / limit)
			if _, err := bw.Write([]byte{r, gr, b}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// terrainColor maps t ∈ [-1, 1] to a diverging blue→white→brown ramp.
func terrainColor(t float64) (r, g, b uint8) {
	if t < -1 {
		t = -1
	}
	if t > 1 {
		t = 1
	}
	if t < 0 {
		// deep blue (0,0,128) → white
		u := 1 + t
		return lerp(0, 255, u), lerp(64, 255, u), lerp(160, 255, u)
	}
	// white → brown (139,90,43)
	return lerp(255, 139, t), lerp(255, 90, t), lerp(255, 43, t)
}

func lerp(a, b float64, t float64) uint8 {
	return uint8(a + (b-a)*t + 0.5)
}

// SavePGM writes a PGM file.
func SavePGM(path string, g *grid.Grid) error {
	return saveWith(path, g, PGM)
}

// SavePPM writes a PPM file.
func SavePPM(path string, g *grid.Grid) error {
	return saveWith(path, g, PPM)
}

func saveWith(path string, g *grid.Grid, f func(io.Writer, *grid.Grid) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file, g); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
