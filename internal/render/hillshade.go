package render

import (
	"io"
	"math"

	"roughsurface/internal/grid"
)

// Hillshade writes g as a PPM with terrain colors modulated by
// Lambertian hillshading — the standard cartographic rendering that
// makes roughness texture visible even where the height range is
// dominated by one region (exactly the situation in the paper's
// inhomogeneous figures). The light comes from azimuth az and elevation
// el (radians); zScale exaggerates relief before shading (1 = none).
func Hillshade(w io.Writer, g *grid.Grid, az, el, zScale float64) error {
	lx := math.Cos(el) * math.Cos(az)
	ly := math.Cos(el) * math.Sin(az)
	lz := math.Sin(el)

	min, max := g.MinMax()
	limit := math.Max(math.Abs(min), math.Abs(max))
	if limit == 0 {
		limit = 1
	}
	if _, err := io.WriteString(w, ppmHeader(g.Nx, g.Ny)); err != nil {
		return err
	}
	row := make([]byte, 3*g.Nx)
	for iy := g.Ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.Nx; ix++ {
			// Central-difference normal (clamped at edges).
			x0, x1 := maxInt(ix-1, 0), minInt(ix+1, g.Nx-1)
			y0, y1 := maxInt(iy-1, 0), minInt(iy+1, g.Ny-1)
			dzdx := zScale * (g.At(x1, iy) - g.At(x0, iy)) / (float64(x1-x0) * g.Dx)
			dzdy := zScale * (g.At(ix, y1) - g.At(ix, y0)) / (float64(y1-y0) * g.Dy)
			nx, ny, nz := -dzdx, -dzdy, 1.0
			norm := math.Sqrt(nx*nx + ny*ny + nz*nz)
			shade := (nx*lx + ny*ly + nz*lz) / norm
			if shade < 0 {
				shade = 0
			}
			// Ambient floor keeps shadowed slopes legible.
			shade = 0.25 + 0.75*shade

			r, gg, b := terrainColor(g.At(ix, iy) / limit)
			row[3*ix] = scaleByte(r, shade)
			row[3*ix+1] = scaleByte(gg, shade)
			row[3*ix+2] = scaleByte(b, shade)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// SaveHillshade writes a hillshaded PPM file with the conventional
// NW light at 45° elevation.
func SaveHillshade(path string, g *grid.Grid) error {
	return saveWith(path, g, func(w io.Writer, g *grid.Grid) error {
		return Hillshade(w, g, 3*math.Pi/4, math.Pi/4, 1)
	})
}

func ppmHeader(nx, ny int) string {
	return "P6\n" + itoa(nx) + " " + itoa(ny) + "\n255\n"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func scaleByte(v uint8, s float64) byte {
	x := float64(v) * s
	if x > 255 {
		x = 255
	}
	return byte(x + 0.5)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
