package render

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
)

func testGrid() *grid.Grid {
	g := grid.New(32, 16)
	rng.NewGaussian(1).Fill(g.Data)
	return g
}

func TestASCIIShape(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCII(&buf, testGrid(), 16); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "#") {
		t.Error("missing header")
	}
	if len(lines) < 3 {
		t.Errorf("too few rows: %d", len(lines))
	}
	if len(lines[1]) != 16 {
		t.Errorf("row width %d, want 16", len(lines[1]))
	}
}

func TestASCIIConstantGrid(t *testing.T) {
	g := grid.New(8, 8)
	g.Fill(3)
	var buf bytes.Buffer
	if err := ASCII(&buf, g, 8); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}

func TestPGMHeaderAndSize(t *testing.T) {
	g := testGrid()
	var buf bytes.Buffer
	if err := PGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n32 16\n255\n")) {
		t.Errorf("bad PGM header: %q", data[:20])
	}
	want := len("P5\n32 16\n255\n") + 32*16
	if len(data) != want {
		t.Errorf("PGM size %d, want %d", len(data), want)
	}
}

func TestPGMScalesFullRange(t *testing.T) {
	g := grid.New(2, 1)
	g.Data[0] = -5
	g.Data[1] = 5
	var buf bytes.Buffer
	if err := PGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	px := buf.Bytes()[len(buf.Bytes())-2:]
	if px[0] != 0 || px[1] != 255 {
		t.Errorf("pixels %v, want [0 255]", px)
	}
}

func TestPPMHeaderAndSize(t *testing.T) {
	g := testGrid()
	var buf bytes.Buffer
	if err := PPM(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n32 16\n255\n")) {
		t.Errorf("bad PPM header: %q", data[:20])
	}
	want := len("P6\n32 16\n255\n") + 3*32*16
	if len(data) != want {
		t.Errorf("PPM size %d, want %d", len(data), want)
	}
}

func TestTerrainColorAnchors(t *testing.T) {
	r, g, b := terrainColor(0)
	if r != 255 || g != 255 || b != 255 {
		t.Errorf("zero height should be white, got (%d,%d,%d)", r, g, b)
	}
	r, g, b = terrainColor(-1)
	if b <= r {
		t.Errorf("deep water should be blue, got (%d,%d,%d)", r, g, b)
	}
	r, g, b = terrainColor(1)
	if r <= b {
		t.Errorf("high ground should be brown, got (%d,%d,%d)", r, g, b)
	}
	// Out-of-range values clamp rather than wrap.
	r1, g1, b1 := terrainColor(5)
	r2, g2, b2 := terrainColor(1)
	if r1 != r2 || g1 != g2 || b1 != b2 {
		t.Error("clamping broken")
	}
}

func TestSaveFiles(t *testing.T) {
	dir := t.TempDir()
	g := testGrid()
	pgm := filepath.Join(dir, "a.pgm")
	ppm := filepath.Join(dir, "a.ppm")
	if err := SavePGM(pgm, g); err != nil {
		t.Fatal(err)
	}
	if err := SavePPM(ppm, g); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(pgm); err != nil || fi.Size() == 0 {
		t.Error("PGM file missing or empty")
	}
	if fi, err := os.Stat(ppm); err != nil || fi.Size() == 0 {
		t.Error("PPM file missing or empty")
	}
}
