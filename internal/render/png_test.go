package render

import (
	"bytes"
	"image/png"
	"testing"

	"roughsurface/internal/grid"
)

func TestPNGRoundTripAndOrientation(t *testing.T) {
	g := grid.New(8, 4)
	// One hot sample at grid (1, 0) — bottom row — must land on the
	// bottom image row (y = Ny-1), matching PPM's +y-up orientation.
	g.Set(1, 0, 1)
	var buf bytes.Buffer
	if err := PNG(&buf, g); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("encoded PNG does not decode: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 4 {
		t.Fatalf("decoded size %dx%d, want 8x4", b.Dx(), b.Dy())
	}
	wantR, wantG, wantB := terrainColor(1)
	r, gg, bb, _ := img.At(1, 3).RGBA()
	if uint8(r>>8) != wantR || uint8(gg>>8) != wantG || uint8(bb>>8) != wantB {
		t.Errorf("peak pixel at (1,3) = (%d,%d,%d), want terrainColor(1) = (%d,%d,%d)",
			r>>8, gg>>8, bb>>8, wantR, wantG, wantB)
	}
}

func TestPNGDeterministic(t *testing.T) {
	g := grid.New(16, 16)
	for i := range g.Data {
		g.Data[i] = float64(i%7) - 3
	}
	var a, b bytes.Buffer
	if err := PNG(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := PNG(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical grids encoded to different PNG bytes")
	}
}
