package render

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"roughsurface/internal/grid"
)

func TestHillshadeFlatIsUniform(t *testing.T) {
	g := grid.New(8, 8)
	g.Fill(2)
	var buf bytes.Buffer
	if err := Hillshade(&buf, g, 3*math.Pi/4, math.Pi/4, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	hdr := len(ppmHeader(8, 8))
	first := data[hdr : hdr+3]
	for i := hdr; i < len(data); i += 3 {
		if data[i] != first[0] || data[i+1] != first[1] || data[i+2] != first[2] {
			t.Fatal("flat surface shaded non-uniformly")
		}
	}
}

func TestHillshadeSlopeContrast(t *testing.T) {
	// A ridge: west face looks toward the NW light (bright), east face
	// away (dark). Compare the same color channel across the ridge.
	g := grid.New(32, 8)
	for iy := 0; iy < 8; iy++ {
		for ix := 0; ix < 32; ix++ {
			h := float64(ix)
			if ix >= 16 {
				h = float64(31 - ix)
			}
			g.Set(ix, iy, h) // rises to the middle: west face slopes up eastward
		}
	}
	var buf bytes.Buffer
	// Light from the east (azimuth 0): the west-rising face is lit.
	if err := Hillshade(&buf, g, 0, math.Pi/4, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[len(ppmHeader(32, 8)):]
	row := 4 // any interior image row
	lum := func(ix int) int {
		o := (row*32 + ix) * 3
		return int(data[o]) + int(data[o+1]) + int(data[o+2])
	}
	// ix=8 is on the rising (east-facing... facing the +x light? The
	// face for ix<16 has dzdx>0, normal tilts toward -x, away from an
	// azimuth-0 light; the descending face tilts toward +x, toward it.
	if !(lum(24) > lum(8)) {
		t.Errorf("light-facing slope not brighter: %d vs %d", lum(24), lum(8))
	}
}

func TestHillshadeHeaderAndSize(t *testing.T) {
	g := grid.New(5, 4)
	var buf bytes.Buffer
	if err := Hillshade(&buf, g, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	want := len(ppmHeader(5, 4)) + 3*5*4
	if buf.Len() != want {
		t.Errorf("size %d want %d", buf.Len(), want)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n5 4\n255\n")) {
		t.Error("bad header")
	}
}

func TestSaveHillshade(t *testing.T) {
	g := grid.New(6, 6)
	g.Set(3, 3, 2)
	path := filepath.Join(t.TempDir(), "h.ppm")
	if err := SaveHillshade(path, g); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Error("hillshade file missing or empty")
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		v int
		s string
	}{{0, "0"}, {7, "7"}, {255, "255"}, {1024, "1024"}} {
		if got := itoa(c.v); got != c.s {
			t.Errorf("itoa(%d) = %q", c.v, got)
		}
	}
}
