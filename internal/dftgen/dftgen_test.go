package dftgen

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func TestNewValidates(t *testing.T) {
	s := spectrum.MustGaussian(1, 8, 8)
	if _, err := New(s, 1, 64, 1, 1); err == nil {
		t.Error("1-row surface accepted")
	}
	if _, err := New(s, 64, 64, 0, 1); err == nil {
		t.Error("dx=0 accepted")
	}
	if _, err := New(s, 64, 64, 1, 1); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := Must(spectrum.MustGaussian(1, 8, 8), 64, 64, 1, 1)
	a := g.GenerateSeeded(42)
	b := g.GenerateSeeded(42)
	if !a.EqualWithin(b, 0) {
		t.Error("same seed produced different surfaces")
	}
	c := g.GenerateSeeded(43)
	if a.EqualWithin(c, 1e-9) {
		t.Error("different seeds produced identical surfaces")
	}
}

func TestOutputGeometry(t *testing.T) {
	g := Must(spectrum.MustGaussian(1, 8, 8), 128, 64, 2, 4)
	s := g.GenerateSeeded(1)
	if s.Nx != 128 || s.Ny != 64 || !approx.Exact(s.Dx, 2) || !approx.Exact(s.Dy, 4) {
		t.Errorf("geometry %dx%d spacing %gx%g", s.Nx, s.Ny, s.Dx, s.Dy)
	}
	x, y := s.XY(64, 32)
	if x != 0 || y != 0 {
		t.Errorf("center sample at (%g,%g), want origin", x, y)
	}
}

func statCase(t *testing.T, s spectrum.Spectrum, seed uint64, stdTol, acfTol float64) {
	t.Helper()
	const n = 256
	g := Must(s, n, n, 1, 1)
	surf := g.GenerateSeeded(seed)

	h := s.SigmaH()
	sum := stats.Describe(surf.Data)
	if math.Abs(sum.Mean) > 0.15*h {
		t.Errorf("%s: mean %g not near 0 (h=%g)", s.Name(), sum.Mean, h)
	}
	if math.Abs(sum.Std-h)/h > stdTol {
		t.Errorf("%s: std %g, want %g (rel tol %g)", s.Name(), sum.Std, h, stdTol)
	}

	// Measured autocovariance vs analytic ρ over lags within 2 correlation
	// lengths, relative to h².
	cov := stats.AutocovarianceFFT(surf)
	clx, _ := s.CorrelationLengths()
	maxLag := int(2 * clx)
	profile := stats.LagProfileX(cov, maxLag)
	var rmse float64
	for d := 0; d <= maxLag; d++ {
		diff := profile[d] - s.Autocorrelation(float64(d), 0)
		rmse += diff * diff
	}
	rmse = math.Sqrt(rmse/float64(maxLag+1)) / (h * h)
	if rmse > acfTol {
		t.Errorf("%s: autocovariance relative RMSE %g > %g", s.Name(), rmse, acfTol)
	}

	// Heights are Gaussian. KS requires (approximately) independent
	// samples, so subsample on a stride of several correlation lengths
	// before testing; running KS on the raw correlated field would
	// wildly overstate the evidence.
	stride := int(4 * clx)
	var sub []float64
	for iy := 0; iy < surf.Ny; iy += stride {
		for ix := 0; ix < surf.Nx; ix += stride {
			sub = append(sub, surf.At(ix, iy))
		}
	}
	if _, p := stats.KSNormal(sub, sum.Mean, sum.Std); p < 0.001 {
		t.Errorf("%s: KS rejects Gaussian heights, p=%g", s.Name(), p)
	}
}

// TestStatisticsMatchTargets validates the direct method against the
// prescribed statistics for all three spectral families (experiment E7's
// baseline half). Tolerances reflect the sampling error of one 256²
// realization with ~(256/cl)² effective degrees of freedom.
func TestStatisticsMatchTargets(t *testing.T) {
	statCase(t, spectrum.MustGaussian(1.0, 8, 8), 101, 0.12, 0.08)
	statCase(t, spectrum.MustPowerLaw(1.5, 8, 8, 2), 103, 0.15, 0.10)
	statCase(t, spectrum.MustExponential(2.0, 8, 8), 105, 0.15, 0.15)
}

func TestAnisotropicCorrelation(t *testing.T) {
	// clx = 16, cly = 4: the x-profile must decay ~4x slower than y's.
	s := spectrum.MustGaussian(1, 16, 4)
	surf := Must(s, 256, 256, 1, 1).GenerateSeeded(7)
	cov := stats.AutocovarianceFFT(surf)
	clxEst := stats.CorrelationLength(stats.LagProfileX(cov, 64), 1)
	clyEst := stats.CorrelationLength(stats.LagProfileY(cov, 64), 1)
	if clxEst < 2*clyEst {
		t.Errorf("anisotropy not reproduced: clx_est=%g cly_est=%g", clxEst, clyEst)
	}
	if math.Abs(clxEst-16)/16 > 0.35 {
		t.Errorf("clx estimate %g far from 16", clxEst)
	}
	if math.Abs(clyEst-4)/4 > 0.35 {
		t.Errorf("cly estimate %g far from 4", clyEst)
	}
}

func TestEnsembleVarianceConverges(t *testing.T) {
	// Averaging the sample variance over independent realizations should
	// tighten toward h² (law of large numbers across the ensemble).
	s := spectrum.MustGaussian(1.2, 8, 8)
	g := Must(s, 128, 128, 1, 1)
	gauss := rng.NewGaussian(55)
	const trials = 12
	var acc float64
	for i := 0; i < trials; i++ {
		surf := g.Generate(gauss)
		acc += stats.Describe(surf.Data).Variance
	}
	acc /= trials
	h2 := 1.2 * 1.2
	if math.Abs(acc-h2)/h2 > 0.06 {
		t.Errorf("ensemble variance %g, want %g", acc, h2)
	}
}

func TestNonSquareAndOddSizes(t *testing.T) {
	s := spectrum.MustGaussian(1, 6, 6)
	for _, size := range [][2]int{{64, 32}, {48, 80}, {63, 65}} {
		g := Must(s, size[0], size[1], 1, 1)
		surf := g.GenerateSeeded(9)
		if surf.Nx != size[0] || surf.Ny != size[1] {
			t.Fatalf("size %v: wrong output dims", size)
		}
		std := stats.Describe(surf.Data).Std
		if math.Abs(std-1) > 0.35 {
			t.Errorf("size %v: std %g implausible", size, std)
		}
	}
}
