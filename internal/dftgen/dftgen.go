// Package dftgen implements the direct DFT method of paper §2.4
// (eqn 30): a homogeneous random rough surface is synthesized in one
// shot as the (real) transform of the amplitude-weighted Hermitian
// Gaussian array,
//
//	f[n] = Σ_m v[m]·u[m]·e^{+j2πm·n/N} = NxNy·IDFT(v·u)[n]
//
// with v = sqrt(w) from the spectrum's weighting array and u from
// package randarr. The result has zero mean, variance Σw ≈ h², and
// autocorrelation DFT(w) ≈ ρ — the identities tested in experiments
// E5–E7.
//
// This is the baseline the convolution method (package convgen) is
// compared against: exact-spectrum periodic surfaces of a fixed size,
// with none of the convolution method's extendability.
package dftgen

import (
	"fmt"

	"roughsurface/internal/fft"
	"roughsurface/internal/grid"
	"roughsurface/internal/randarr"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
)

// Generator produces fixed-size homogeneous surfaces by the direct DFT
// method. A Generator is safe for sequential reuse (the half-spectrum
// scratch is reused across calls); each Generate call draws a fresh
// random array from the supplied stream.
type Generator struct {
	spec   spectrum.Spectrum
	nx, ny int
	dx, dy float64
	v      *grid.Grid // amplitude array sqrt(w)
	plan   *fft.Plan2D
	uhalf  *grid.CGrid // (nx/2+1)×ny half-spectrum scratch
}

// New builds a generator for nx×ny surfaces with sample spacings dx×dy.
func New(s spectrum.Spectrum, nx, ny int, dx, dy float64) (*Generator, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("dftgen: surface must be at least 2x2, got %dx%d", nx, ny)
	}
	if !(dx > 0) || !(dy > 0) {
		return nil, fmt.Errorf("dftgen: sample spacings must be positive, got (%g, %g)", dx, dy)
	}
	w := spectrum.Weights(s, nx, ny, float64(nx)*dx, float64(ny)*dy)
	plan, err := fft.NewPlan2D(nx, ny)
	if err != nil {
		return nil, err
	}
	return &Generator{
		spec: s, nx: nx, ny: ny, dx: dx, dy: dy,
		v: spectrum.Amplitude(w), plan: plan,
	}, nil
}

// Must is New that panics on error.
func Must(s spectrum.Spectrum, nx, ny int, dx, dy float64) *Generator {
	g, err := New(s, nx, ny, dx, dy)
	if err != nil {
		panic(err)
	}
	return g
}

// Spectrum reports the model the generator was built for.
func (g *Generator) Spectrum() spectrum.Spectrum { return g.spec }

// Generate synthesizes one surface realization, drawing Gaussians from
// gauss. The returned grid is centered on the origin (paper figure
// convention). The generation is O(N log N) in the number of samples.
//
// Only the non-redundant half spectrum (kx = 0..nx/2) is materialized
// and weighted; the real-input inverse transform reconstructs the full
// surface from it. Realness is structural — the half-spectrum inverse
// cannot produce an imaginary residue — so no residue check is needed,
// and the Hermitian pairing itself is pinned by the randarr tests.
func (g *Generator) Generate(gauss rng.Normal) *grid.Grid {
	hx := g.nx/2 + 1
	if g.uhalf == nil {
		g.uhalf = grid.NewC(hx, g.ny)
	}
	u := g.uhalf
	randarr.HermitianHalfInto(u, g.nx, gauss)
	for ky := 0; ky < g.ny; ky++ {
		vrow := g.v.Data[ky*g.nx : ky*g.nx+hx]
		urow := u.Data[ky*hx : (ky+1)*hx]
		for kx, a := range vrow {
			urow[kx] *= complex(a, 0)
		}
	}

	out := grid.NewCentered(g.nx, g.ny, g.dx, g.dy)
	g.plan.InverseRealUnscaledTo(out.Data, u.Data)
	return out
}

// GenerateSeeded is a convenience wrapper generating from a fresh
// Gaussian stream with the given seed.
func (g *Generator) GenerateSeeded(seed uint64) *grid.Grid {
	return g.Generate(rng.NewGaussian(seed))
}
