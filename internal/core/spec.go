// Package core is the library's public facade: a declarative scene
// description (JSON-serializable) covering every capability of the
// paper — homogeneous surfaces by the direct DFT or convolution method,
// and inhomogeneous surfaces by the plate-oriented or point-oriented
// method — plus the assembly code that turns a Scene into a generated
// surface. The command-line tools and examples are thin wrappers over
// this package.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"roughsurface/internal/inhomo"
	"roughsurface/internal/spectrum"
)

// SpectrumSpec declares one spectral model. CL is an isotropic
// shorthand; CLX/CLY override it per axis. N is the power-law order
// (required for family "powerlaw", ignored otherwise).
type SpectrumSpec struct {
	Family string  `json:"family"`
	H      float64 `json:"h,omitempty"`
	CL     float64 `json:"cl,omitempty"`
	CLX    float64 `json:"clx,omitempty"`
	CLY    float64 `json:"cly,omitempty"`
	N      float64 `json:"n,omitempty"`

	// Sea-family parameters (family "sea"): wind speed U (m/s) and
	// gravity G (default 9.81). H/CL are derived, not specified.
	U float64 `json:"u,omitempty"`
	G float64 `json:"g,omitempty"`
}

// lengths resolves the isotropic shorthand.
func (s SpectrumSpec) lengths() (clx, cly float64) {
	clx, cly = s.CLX, s.CLY
	if clx == 0 {
		clx = s.CL
	}
	if cly == 0 {
		cly = s.CL
	}
	return clx, cly
}

// Build constructs the spectrum, validating all parameters.
func (s SpectrumSpec) Build() (spectrum.Spectrum, error) {
	clx, cly := s.lengths()
	switch s.Family {
	case "gaussian":
		return spectrum.NewGaussian(s.H, clx, cly)
	case "powerlaw":
		return spectrum.NewPowerLaw(s.H, clx, cly, s.N)
	case "exponential":
		return spectrum.NewExponential(s.H, clx, cly)
	case "sea":
		g := s.G
		if g == 0 {
			g = 9.81
		}
		return spectrum.NewSea(s.U, g)
	case "":
		return nil, fmt.Errorf("core: spectrum family missing")
	default:
		return nil, fmt.Errorf("core: unknown spectrum family %q (want gaussian, powerlaw, exponential or sea)", s.Family)
	}
}

// key canonicalizes the spec for component deduplication.
func (s SpectrumSpec) key() string {
	clx, cly := s.lengths()
	return fmt.Sprintf("%s|%g|%g|%g|%g|%g|%g", s.Family, s.H, clx, cly, s.N, s.U, s.G)
}

// validate checks the spec field by field, attributing every failure to
// the JSON path that caused it (path is the spec's own location, e.g.
// "regions[2].spectrum"). It accepts exactly the specs Build accepts,
// with finite-parameter checks layered on top, so Validate-then-Build
// never surprises.
func (s SpectrumSpec) validate(path string) error {
	switch s.Family {
	case "gaussian", "exponential":
		return s.validateCommon(path)
	case "powerlaw":
		if err := s.validateCommon(path); err != nil {
			return err
		}
		if !(s.N > 1) || math.IsInf(s.N, 0) {
			return fmt.Errorf("core: %s.n: power-law order must exceed 1 and be finite, got %g", path, s.N)
		}
		return nil
	case "sea":
		if !(s.U > 0) || math.IsInf(s.U, 0) {
			return fmt.Errorf("core: %s.u: wind speed must be > 0 and finite, got %g", path, s.U)
		}
		if s.G != 0 && (!(s.G > 0) || math.IsInf(s.G, 0)) {
			return fmt.Errorf("core: %s.g: gravity must be > 0 and finite, got %g", path, s.G)
		}
		return nil
	case "":
		return fmt.Errorf("core: %s.family: missing (want gaussian, powerlaw, exponential or sea)", path)
	default:
		return fmt.Errorf("core: %s.family: unknown family %q (want gaussian, powerlaw, exponential or sea)", path, s.Family)
	}
}

func (s SpectrumSpec) validateCommon(path string) error {
	if !(s.H > 0) || math.IsInf(s.H, 0) {
		return fmt.Errorf("core: %s.h: height deviation must be > 0 and finite, got %g", path, s.H)
	}
	clx, cly := s.lengths()
	if !(clx > 0) || math.IsInf(clx, 0) {
		return fmt.Errorf("core: %s.%s: correlation length must be > 0 and finite, got %g",
			path, clField(s.CLX, "clx"), clx)
	}
	if !(cly > 0) || math.IsInf(cly, 0) {
		return fmt.Errorf("core: %s.%s: correlation length must be > 0 and finite, got %g",
			path, clField(s.CLY, "cly"), cly)
	}
	return nil
}

// clField names the field the user actually set: the per-axis override
// when present, the isotropic shorthand "cl" otherwise.
func clField(axis float64, name string) string {
	if axis != 0 {
		return name
	}
	return "cl"
}

// RegionSpec declares one plate-oriented region and the statistics that
// hold inside it. Shape is "rect", "circle", "outside-circle" (the
// complement of a circle, as in Fig. 3), "sector" (annular sector:
// radii [R0, R], angles [A0, A1] radians around (CX, CY)) or "polygon"
// (vertices PX/PY). For rects, omitted bounds mean unbounded (±∞), so
// half-planes and quadrants are expressible.
type RegionSpec struct {
	Shape    string       `json:"shape"`
	X0       *float64     `json:"x0,omitempty"`
	Y0       *float64     `json:"y0,omitempty"`
	X1       *float64     `json:"x1,omitempty"`
	Y1       *float64     `json:"y1,omitempty"`
	CX       float64      `json:"cx,omitempty"`
	CY       float64      `json:"cy,omitempty"`
	R        float64      `json:"r,omitempty"`
	R0       float64      `json:"r0,omitempty"`
	A0       float64      `json:"a0,omitempty"`
	A1       float64      `json:"a1,omitempty"`
	PX       []float64    `json:"px,omitempty"`
	PY       []float64    `json:"py,omitempty"`
	T        float64      `json:"t"`
	Spectrum SpectrumSpec `json:"spectrum"`
}

func orInf(v *float64, sign int) float64 {
	if v != nil {
		return *v
	}
	return math.Inf(sign)
}

// buildRegion constructs the geometric region (without its spectrum).
func (r RegionSpec) buildRegion() (inhomo.Region, error) {
	switch r.Shape {
	case "rect":
		return inhomo.Rect{
			X0: orInf(r.X0, -1), Y0: orInf(r.Y0, -1),
			X1: orInf(r.X1, 1), Y1: orInf(r.Y1, 1),
			T: r.T,
		}, nil
	case "circle":
		if !(r.R > 0) {
			return nil, fmt.Errorf("core: circle region needs positive radius, got %g", r.R)
		}
		return inhomo.Circle{CX: r.CX, CY: r.CY, R: r.R, T: r.T}, nil
	case "outside-circle":
		if !(r.R > 0) {
			return nil, fmt.Errorf("core: outside-circle region needs positive radius, got %g", r.R)
		}
		return inhomo.Complement{Inner: inhomo.Circle{CX: r.CX, CY: r.CY, R: r.R, T: r.T}}, nil
	case "sector":
		if !(r.R > r.R0) || r.R0 < 0 {
			return nil, fmt.Errorf("core: sector needs 0 <= r0 < r, got r0=%g r=%g", r.R0, r.R)
		}
		if !(r.A1 > r.A0) || r.A1-r.A0 > 2*math.Pi+1e-9 {
			return nil, fmt.Errorf("core: sector needs a0 < a1 with span <= 2π, got [%g, %g]", r.A0, r.A1)
		}
		return inhomo.Sector{CX: r.CX, CY: r.CY, R0: r.R0, R1: r.R, A0: r.A0, A1: r.A1, T: r.T}, nil
	case "polygon":
		return inhomo.NewPolygon(r.PX, r.PY, r.T)
	default:
		return nil, fmt.Errorf("core: unknown region shape %q", r.Shape)
	}
}

// validate mirrors buildRegion's checks with field-path attribution, so
// scene errors read like "regions[2].r: circle region needs a positive
// radius" instead of pointing at the region as a whole.
func (r RegionSpec) validate(path string) error {
	switch r.Shape {
	case "rect":
		return nil
	case "circle", "outside-circle":
		if !(r.R > 0) {
			return fmt.Errorf("core: %s.r: %s region needs a positive radius, got %g", path, r.Shape, r.R)
		}
	case "sector":
		if !(r.R > r.R0) || r.R0 < 0 {
			return fmt.Errorf("core: %s.r0: sector needs 0 <= r0 < r, got r0=%g r=%g", path, r.R0, r.R)
		}
		if !(r.A1 > r.A0) || r.A1-r.A0 > 2*math.Pi+1e-9 {
			return fmt.Errorf("core: %s.a0: sector needs a0 < a1 with span <= 2π, got [%g, %g]", path, r.A0, r.A1)
		}
	case "polygon":
		if len(r.PX) != len(r.PY) {
			return fmt.Errorf("core: %s.px: polygon coordinate lists differ: %d vs %d", path, len(r.PX), len(r.PY))
		}
		if len(r.PX) < 3 {
			return fmt.Errorf("core: %s.px: polygon needs at least 3 vertices, got %d", path, len(r.PX))
		}
	case "":
		return fmt.Errorf("core: %s.shape: missing (want rect, circle, outside-circle, sector or polygon)", path)
	default:
		return fmt.Errorf("core: %s.shape: unknown shape %q (want rect, circle, outside-circle, sector or polygon)", path, r.Shape)
	}
	return nil
}

// PointSpec declares one representative point of the point-oriented
// method with the statistics holding around it.
type PointSpec struct {
	X        float64      `json:"x"`
	Y        float64      `json:"y"`
	Spectrum SpectrumSpec `json:"spectrum"`
}

// Method names accepted by Scene.Method.
const (
	MethodHomogeneous = "homogeneous"
	MethodPlate       = "plate"
	MethodPoint       = "point"
)

// Generator engine names accepted by Scene.Generator.
const (
	GeneratorConv = "conv"
	GeneratorDFT  = "dft"
)

// Render precisions for Scene.Precision.
const (
	PrecisionF32 = "f32"
	PrecisionF64 = "f64"
)

// Scene is a complete declarative surface description.
type Scene struct {
	// Grid geometry. The window is centered on the origin; Dx/Dy default
	// to 1.
	Nx int     `json:"nx"`
	Ny int     `json:"ny"`
	Dx float64 `json:"dx,omitempty"`
	Dy float64 `json:"dy,omitempty"`

	// Seed selects the noise realization (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Method: homogeneous, plate or point.
	Method string `json:"method"`

	// Homogeneous fields.
	Spectrum  *SpectrumSpec `json:"spectrum,omitempty"`
	Generator string        `json:"generator,omitempty"` // conv (default) or dft

	// Precision selects the default render precision for this scene's
	// tiles: "f64" (the reference engine, default) or "f32" (the SIMD
	// serving pipeline; DESIGN.md §13). It does not change the surface
	// being described — f32 renders agree with f64 within the
	// documented tolerance — so "f64" is collapsed to empty during
	// normalization and the choice never splits the scene's content
	// address. Per-request ?precision= overrides it.
	Precision string `json:"precision,omitempty"`

	// Plate-oriented fields.
	Regions []RegionSpec `json:"regions,omitempty"`

	// Point-oriented fields.
	Points      []PointSpec `json:"points,omitempty"`
	TransitionT float64     `json:"transition_t,omitempty"`

	// Kernel design knobs (convolution method): the design span in
	// correlation lengths (default 8) and the truncation energy epsilon
	// (default 1e-4; -1 disables truncation).
	KernelSpanCL float64 `json:"kernel_span_cl,omitempty"`
	KernelEps    float64 `json:"kernel_eps,omitempty"`

	// ExactVariance rescales each weight array so the generated height
	// variance equals h² exactly, compensating the spectral tail beyond
	// the Nyquist frequency (an extension beyond the paper's raw
	// discretization; matters most for the exponential family at short
	// correlation lengths).
	ExactVariance bool `json:"exact_variance,omitempty"`
}

// normalized returns a copy with defaults applied.
func (sc Scene) normalized() Scene {
	if sc.Dx == 0 {
		sc.Dx = 1
	}
	if sc.Dy == 0 {
		sc.Dy = 1
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Generator == "" {
		sc.Generator = GeneratorConv
	}
	if sc.Precision == PrecisionF64 {
		// Collapse rather than spell out: precision is a render knob,
		// not part of the surface's identity, and scenes hashed before
		// the field existed must keep their content address.
		sc.Precision = ""
	}
	return sc
}

// Normalized returns a copy with all defaults applied — unit spacings,
// seed 1, the conv generator. It is the canonical form: the service
// layer hashes the JSON encoding of the normalized scene for content
// addressing, so formatting differences and spelled-out defaults don't
// split the cache.
func (sc Scene) Normalized() Scene {
	return sc.normalized()
}

// Validate checks the scene for structural errors without generating.
// Errors carry the JSON field path of the offending value (e.g.
// "regions[2].spectrum.clx: must be > 0 ..."), so a rejected request
// against a large scene file points at the exact line to fix.
func (sc Scene) Validate() error {
	s := sc.normalized()
	if s.Nx < 2 || s.Ny < 2 {
		return fmt.Errorf("core: nx/ny: scene grid must be at least 2x2, got %dx%d", s.Nx, s.Ny)
	}
	if !(s.Dx > 0) || math.IsInf(s.Dx, 0) {
		return fmt.Errorf("core: dx: sample spacing must be > 0 and finite, got %g", s.Dx)
	}
	if !(s.Dy > 0) || math.IsInf(s.Dy, 0) {
		return fmt.Errorf("core: dy: sample spacing must be > 0 and finite, got %g", s.Dy)
	}
	if s.Precision != "" && s.Precision != PrecisionF32 {
		return fmt.Errorf("core: precision: unknown precision %q (want f32 or f64)", sc.Precision)
	}
	switch s.Method {
	case MethodHomogeneous:
		if s.Spectrum == nil {
			return fmt.Errorf("core: spectrum: homogeneous scene needs a spectrum")
		}
		if err := s.Spectrum.validate("spectrum"); err != nil {
			return err
		}
		if s.Generator != GeneratorConv && s.Generator != GeneratorDFT {
			return fmt.Errorf("core: generator: unknown generator %q (want conv or dft)", s.Generator)
		}
	case MethodPlate:
		if len(s.Regions) == 0 {
			return fmt.Errorf("core: regions: plate scene needs at least one region")
		}
		for i, r := range s.Regions {
			path := fmt.Sprintf("regions[%d]", i)
			if err := r.validate(path); err != nil {
				return err
			}
			if err := r.Spectrum.validate(path + ".spectrum"); err != nil {
				return err
			}
		}
	case MethodPoint:
		if len(s.Points) == 0 {
			return fmt.Errorf("core: points: point scene needs at least one point")
		}
		if !(s.TransitionT > 0) || math.IsInf(s.TransitionT, 0) {
			return fmt.Errorf("core: transition_t: point scene needs a positive finite transition width, got %g", s.TransitionT)
		}
		for i, p := range s.Points {
			if err := p.Spectrum.validate(fmt.Sprintf("points[%d].spectrum", i)); err != nil {
				return err
			}
		}
	case "":
		return fmt.Errorf("core: method: missing (want homogeneous, plate or point)")
	default:
		return fmt.Errorf("core: method: unknown method %q (want homogeneous, plate or point)", s.Method)
	}
	return nil
}

// ParseScene decodes a JSON scene, rejecting unknown fields so typos in
// config files fail loudly.
func ParseScene(data []byte) (Scene, error) {
	var sc Scene
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scene{}, fmt.Errorf("core: parsing scene: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scene{}, err
	}
	return sc, nil
}

// LoadScene reads and parses a JSON scene file.
func LoadScene(path string) (Scene, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scene{}, err
	}
	return ParseScene(data)
}

// MarshalIndent renders the scene back to formatted JSON.
func (sc Scene) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}
