package core_test

import (
	"fmt"
	"math"

	"roughsurface/internal/core"
	"roughsurface/internal/stats"
)

// Generate a homogeneous surface and verify its height deviation tracks
// the prescription.
func Example() {
	scene := core.Scene{
		Nx: 128, Ny: 128,
		Method:   core.MethodHomogeneous,
		Spectrum: &core.SpectrumSpec{Family: "gaussian", H: 1.0, CL: 10},
		Seed:     1,
	}
	res, err := core.Generate(scene)
	if err != nil {
		fmt.Println(err)
		return
	}
	std := stats.Describe(res.Surface.Data).Std
	fmt.Println("within 15% of target:", math.Abs(std-1.0) < 0.15)
	// Output: within 15% of target: true
}

// Build the paper's Figure 3 geometry declaratively: an exponential
// pond inside a Gaussian plain.
func Example_inhomogeneous() {
	scene := core.Scene{
		Nx: 128, Ny: 128, Method: core.MethodPlate, Seed: 2,
		Regions: []core.RegionSpec{
			{Shape: "circle", R: 30, T: 8,
				Spectrum: core.SpectrumSpec{Family: "exponential", H: 0.2, CL: 6}},
			{Shape: "outside-circle", R: 30, T: 8,
				Spectrum: core.SpectrumSpec{Family: "gaussian", H: 1.0, CL: 6}},
		},
	}
	res, err := core.Generate(scene)
	if err != nil {
		fmt.Println(err)
		return
	}
	surf := res.Surface
	pond := stats.Describe(surf.Sub(56, 56, 16, 16).Data).Std
	plain := stats.Describe(surf.Sub(4, 4, 24, 24).Data).Std
	fmt.Println("pond calmer than plain:", pond < plain/2)
	// Output: pond calmer than plain: true
}
