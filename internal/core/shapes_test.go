package core

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/stats"
)

func TestSectorSceneGenerates(t *testing.T) {
	sc := Scene{
		Nx: 128, Ny: 128, Method: MethodPlate, Seed: 3,
		Regions: []RegionSpec{
			{Shape: "sector", R0: 0, R: 60, A0: -math.Pi / 3, A1: math.Pi / 3, T: 6,
				Spectrum: gauss(2.0, 6)},
			{Shape: "outside-circle", R: 60, T: 6, Spectrum: gauss(0.3, 6)},
		},
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	surf := res.Surface
	// Sector core (along +x inside radius 60) is rough; behind it calm.
	sect := surf.Sub(84, 54, 20, 20)
	calm := surf.Sub(4, 54, 20, 20)
	if !(rms(sect.Data) > 2*rms(calm.Data)) {
		t.Errorf("sector contrast missing: %.3f vs %.3f", rms(sect.Data), rms(calm.Data))
	}
}

func rms(data []float64) float64 {
	var s float64
	for _, v := range data {
		s += v * v
	}
	return math.Sqrt(s / float64(len(data)))
}

func TestPolygonSceneGenerates(t *testing.T) {
	sc := Scene{
		Nx: 96, Ny: 96, Method: MethodPlate, Seed: 5,
		Regions: []RegionSpec{
			{Shape: "polygon",
				PX: []float64{-30, 30, 30, -30}, PY: []float64{-30, -30, 30, 30},
				T: 4, Spectrum: gauss(1.5, 5)},
			{Shape: "rect", T: 4, Spectrum: gauss(0.2, 5)}, // unbounded fallback plane
		},
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s := stats.Describe(res.Surface.Data); !(s.Std > 0) {
		t.Error("degenerate surface")
	}
}

func TestSectorSceneValidation(t *testing.T) {
	bad := []RegionSpec{
		{Shape: "sector", R0: 10, R: 5, A0: 0, A1: 1, Spectrum: gauss(1, 5)},                // r < r0
		{Shape: "sector", R0: 0, R: 10, A0: 1, A1: 0, Spectrum: gauss(1, 5)},                // a1 < a0
		{Shape: "sector", R0: 0, R: 10, A0: 0, A1: 7, Spectrum: gauss(1, 5)},                // span > 2π
		{Shape: "polygon", PX: []float64{0, 1}, PY: []float64{0, 1}, Spectrum: gauss(1, 5)}, // too few vertices
	}
	for i, r := range bad {
		sc := Scene{Nx: 32, Ny: 32, Method: MethodPlate, Regions: []RegionSpec{r}}
		if err := sc.Validate(); err == nil {
			t.Errorf("bad region %d accepted", i)
		}
	}
}

func TestSectorPolygonJSONRoundTrip(t *testing.T) {
	sc := Scene{
		Nx: 64, Ny: 64, Method: MethodPlate,
		Regions: []RegionSpec{
			{Shape: "sector", R0: 5, R: 50, A0: 0.1, A1: 2.5, T: 3, Spectrum: gauss(1, 5)},
			{Shape: "polygon", PX: []float64{0, 10, 5}, PY: []float64{0, 0, 8}, T: 2, Spectrum: gauss(2, 5)},
		},
	}
	data, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScene(data)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.Exact(back.Regions[0].A1, 2.5) || len(back.Regions[1].PX) != 3 {
		t.Errorf("round trip lost shape fields: %+v", back.Regions)
	}
}
