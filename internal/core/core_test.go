package core

import (
	"math"
	"strings"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/stats"
)

func gauss(h, cl float64) SpectrumSpec {
	return SpectrumSpec{Family: "gaussian", H: h, CL: cl}
}

func TestSpectrumSpecBuild(t *testing.T) {
	cases := []struct {
		spec SpectrumSpec
		ok   bool
		name string
	}{
		{gauss(1, 10), true, "gaussian"},
		{SpectrumSpec{Family: "powerlaw", H: 1, CL: 10, N: 2}, true, "powerlaw2"},
		{SpectrumSpec{Family: "exponential", H: 1, CL: 10}, true, "exponential"},
		{SpectrumSpec{Family: "powerlaw", H: 1, CL: 10, N: 1}, false, ""},
		{SpectrumSpec{Family: "blancmange", H: 1, CL: 10}, false, ""},
		{SpectrumSpec{H: 1, CL: 10}, false, ""},
		{gauss(0, 10), false, ""},
	}
	for _, c := range cases {
		s, err := c.spec.Build()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: expected error", c.spec)
		}
		if c.ok && s.Name() != c.name {
			t.Errorf("%+v: name %q want %q", c.spec, s.Name(), c.name)
		}
	}
}

func TestSpectrumSpecAnisotropicShorthand(t *testing.T) {
	s, err := SpectrumSpec{Family: "gaussian", H: 1, CL: 10, CLY: 20}.Build()
	if err != nil {
		t.Fatal(err)
	}
	clx, cly := s.CorrelationLengths()
	if !approx.Exact(clx, 10) || !approx.Exact(cly, 20) {
		t.Errorf("lengths (%g,%g), want (10,20)", clx, cly)
	}
}

func TestSpectrumSpecKeyDistinguishes(t *testing.T) {
	a := gauss(1, 10)
	b := gauss(1, 10)
	if a.key() != b.key() {
		t.Error("identical specs have different keys")
	}
	if a.key() == gauss(2, 10).key() {
		t.Error("different h collides")
	}
	if a.key() == (SpectrumSpec{Family: "exponential", H: 1, CL: 10}).key() {
		t.Error("different family collides")
	}
}

func TestSceneValidate(t *testing.T) {
	good := Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 8))}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scene rejected: %v", err)
	}
	bad := []Scene{
		{Nx: 1, Ny: 64, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 8))},
		{Nx: 64, Ny: 64, Method: MethodHomogeneous},
		{Nx: 64, Ny: 64, Method: "wavelet"},
		{Nx: 64, Ny: 64},
		{Nx: 64, Ny: 64, Method: MethodPlate},
		{Nx: 64, Ny: 64, Method: MethodPoint, Points: []PointSpec{{Spectrum: gauss(1, 8)}}}, // no T
		{Nx: 64, Ny: 64, Method: MethodPoint, TransitionT: 10},
		{Nx: 64, Ny: 64, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 8)), Generator: "quantum"},
		{Nx: 64, Ny: 64, Dx: -1, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 8))},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scene %d accepted", i)
		}
	}
}

func ptr[T any](v T) *T { return &v }

// TestPrecisionNormalization: both precision spellings validate, and
// "f64" (the default) collapses to empty under normalization so the
// field never moves a pre-existing scene's content address.
func TestPrecisionNormalization(t *testing.T) {
	base := Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 8))}
	for _, p := range []string{"", PrecisionF32, PrecisionF64} {
		sc := base
		sc.Precision = p
		if err := sc.Validate(); err != nil {
			t.Errorf("precision %q rejected: %v", p, err)
		}
	}
	sc := base
	sc.Precision = PrecisionF64
	if got := sc.Normalized().Precision; got != "" {
		t.Errorf(`normalized "f64" precision = %q, want ""`, got)
	}
	sc.Precision = PrecisionF32
	if got := sc.Normalized().Precision; got != PrecisionF32 {
		t.Errorf(`normalized "f32" precision = %q, want "f32"`, got)
	}
}

func TestParseSceneRejectsUnknownFields(t *testing.T) {
	_, err := ParseScene([]byte(`{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8},"typo_field":1}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field not rejected: %v", err)
	}
}

func TestSceneJSONRoundTrip(t *testing.T) {
	sc := Scene{
		Nx: 128, Ny: 128, Seed: 7, Method: MethodPoint, TransitionT: 50,
		Points: []PointSpec{
			{X: 0, Y: 0, Spectrum: gauss(1, 10)},
			{X: 100, Y: 0, Spectrum: SpectrumSpec{Family: "exponential", H: 0.5, CL: 20}},
		},
	}
	data, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScene(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nx != sc.Nx || !approx.Exact(back.TransitionT, sc.TransitionT) || len(back.Points) != 2 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestGenerateHomogeneousConvAndDFT(t *testing.T) {
	for _, gen := range []string{GeneratorConv, GeneratorDFT} {
		sc := Scene{Nx: 128, Ny: 128, Method: MethodHomogeneous,
			Spectrum: ptr(gauss(1.5, 8)), Generator: gen, Seed: 3}
		res, err := Generate(sc)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		surf := res.Surface
		if surf.Nx != 128 || surf.Ny != 128 {
			t.Fatalf("%s: wrong size", gen)
		}
		std := stats.Describe(surf.Data).Std
		if math.Abs(std-1.5)/1.5 > 0.25 {
			t.Errorf("%s: std %g want ~1.5", gen, std)
		}
		x, y := surf.XY(64, 64)
		if x != 0 || y != 0 {
			t.Errorf("%s: not centered", gen)
		}
	}
}

func TestGenerateDeterministicAcrossCalls(t *testing.T) {
	sc := Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous, Spectrum: ptr(gauss(1, 6)), Seed: 11}
	a := MustGenerate(sc).Surface
	b := MustGenerate(sc).Surface
	if !a.EqualWithin(b, 0) {
		t.Error("same scene generated different surfaces")
	}
}

func TestGeneratePlateQuadrants(t *testing.T) {
	zero := 0.0
	sc := Scene{
		Nx: 192, Ny: 192, Method: MethodPlate, Seed: 5,
		Regions: []RegionSpec{
			{Shape: "rect", X0: &zero, Y0: &zero, T: 8, Spectrum: gauss(0.5, 6)},
			{Shape: "rect", X1: &zero, Y0: &zero, T: 8, Spectrum: gauss(2.0, 6)},
			{Shape: "rect", X1: &zero, Y1: &zero, T: 8, Spectrum: gauss(0.5, 6)},
			{Shape: "rect", X0: &zero, Y1: &zero, T: 8, Spectrum: gauss(2.0, 6)},
		},
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inhomo == nil {
		t.Fatal("plate result missing generator")
	}
	surf := res.Surface
	// Q1 core (x>0, y>0) is the low-h region; Q2 core the high-h one.
	q1 := surf.Sub(128, 128, 60, 60)
	q2 := surf.Sub(4, 128, 60, 60)
	s1 := stats.Describe(q1.Data).Std
	s2 := stats.Describe(q2.Data).Std
	if !(s2 > 2*s1) {
		t.Errorf("quadrant contrast missing: q1 std %g, q2 std %g", s1, s2)
	}
}

func TestGeneratePointDedupesComponents(t *testing.T) {
	sc := Scene{
		Nx: 96, Ny: 96, Method: MethodPoint, TransitionT: 20, Seed: 9,
		Points: []PointSpec{
			{X: -30, Y: 0, Spectrum: gauss(1, 6)},
			{X: 30, Y: 0, Spectrum: gauss(1, 6)}, // same spectrum → same component
			{X: 0, Y: 40, Spectrum: SpectrumSpec{Family: "exponential", H: 0.5, CL: 8}},
		},
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KernelSizes) != 2 {
		t.Errorf("expected 2 deduped kernels, got %d", len(res.KernelSizes))
	}
	if res.Surface.Nx != 96 {
		t.Error("wrong output size")
	}
}

func TestGenerateRejectsInvalidScene(t *testing.T) {
	if _, err := Generate(Scene{Nx: 64, Ny: 64, Method: "nope"}); err == nil {
		t.Error("invalid scene generated")
	}
	if _, err := Generate(Scene{Nx: 64, Ny: 64, Method: MethodPlate,
		Regions: []RegionSpec{{Shape: "circle", R: -5, Spectrum: gauss(1, 6)}}}); err == nil {
		t.Error("negative-radius circle accepted")
	}
}

func TestGenerateOutsideCircleScene(t *testing.T) {
	sc := Scene{
		Nx: 128, Ny: 128, Method: MethodPlate, Seed: 21,
		Regions: []RegionSpec{
			{Shape: "circle", R: 30, T: 10, Spectrum: SpectrumSpec{Family: "exponential", H: 0.2, CL: 5}},
			{Shape: "outside-circle", R: 30, T: 10, Spectrum: gauss(1.0, 5)},
		},
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	surf := res.Surface
	// Inside the pond the surface is much calmer than outside.
	inside := surf.Sub(54, 54, 20, 20)
	outside := surf.Sub(4, 4, 20, 20)
	si := stats.Describe(inside.Data).Std
	so := stats.Describe(outside.Data).Std
	if !(so > 2*si) {
		t.Errorf("pond contrast missing: inside %g outside %g", si, so)
	}
}

func TestValidateFieldPathErrors(t *testing.T) {
	gaussOK := gauss(1, 8)
	cases := []struct {
		name string
		sc   Scene
		want string // substring the error must contain
	}{
		{"spectrum.h", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "gaussian", H: -1, CL: 8}}, "spectrum.h:"},
		{"spectrum.cl", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "gaussian", H: 1}}, "spectrum.cl:"},
		{"spectrum.clx", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "gaussian", H: 1, CLX: -3, CLY: 8}}, "spectrum.clx:"},
		{"spectrum.n", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "powerlaw", H: 1, CL: 8, N: 0.5}}, "spectrum.n:"},
		{"spectrum.u", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "sea"}}, "spectrum.u:"},
		{"spectrum.family", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
			Spectrum: &SpectrumSpec{Family: "warp", H: 1, CL: 8}}, "spectrum.family:"},
		{"regions[1].spectrum.clx", Scene{Nx: 64, Ny: 64, Method: MethodPlate,
			Regions: []RegionSpec{
				{Shape: "rect", T: 2, Spectrum: gaussOK},
				{Shape: "circle", R: 10, T: 2, Spectrum: SpectrumSpec{Family: "gaussian", H: 1, CLX: -1, CLY: 4}},
			}}, "regions[1].spectrum.clx:"},
		{"regions[0].r", Scene{Nx: 64, Ny: 64, Method: MethodPlate,
			Regions: []RegionSpec{{Shape: "circle", R: -5, Spectrum: gaussOK}}}, "regions[0].r:"},
		{"regions[0].shape", Scene{Nx: 64, Ny: 64, Method: MethodPlate,
			Regions: []RegionSpec{{Shape: "blob", Spectrum: gaussOK}}}, "regions[0].shape:"},
		{"regions[0].px", Scene{Nx: 64, Ny: 64, Method: MethodPlate,
			Regions: []RegionSpec{{Shape: "polygon", PX: []float64{0, 1}, PY: []float64{0, 1}, Spectrum: gaussOK}}}, "regions[0].px:"},
		{"points[1].spectrum.h", Scene{Nx: 64, Ny: 64, Method: MethodPoint, TransitionT: 5,
			Points: []PointSpec{
				{X: 0, Y: 0, Spectrum: gaussOK},
				{X: 1, Y: 1, Spectrum: SpectrumSpec{Family: "gaussian", CL: 8}},
			}}, "points[1].spectrum.h:"},
		{"transition_t", Scene{Nx: 64, Ny: 64, Method: MethodPoint,
			Points: []PointSpec{{Spectrum: gaussOK}}}, "transition_t:"},
		{"generator", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous, Generator: "warp",
			Spectrum: &gaussOK}, "generator:"},
		{"precision", Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous, Precision: "f16",
			Spectrum: &gaussOK}, "precision:"},
		{"method", Scene{Nx: 64, Ny: 64, Method: "warp"}, "method:"},
		{"dy", Scene{Nx: 64, Ny: 64, Dx: 1, Dy: -2, Method: MethodHomogeneous, Spectrum: &gaussOK}, "dy:"},
	}
	for _, c := range cases {
		err := c.sc.Validate()
		if err == nil {
			t.Errorf("%s: invalid scene accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name field path %q", c.name, err, c.want)
		}
	}
}

// TestValidateMatchesGenerate pins the contract Components and the
// service layer rely on: a scene Validate accepts must also assemble
// (kernel design succeeds), so registration-time validation is the only
// gate a tile server needs.
func TestValidateMatchesGenerate(t *testing.T) {
	scenes := []Scene{
		{Nx: 32, Ny: 32, Method: MethodHomogeneous, Spectrum: &SpectrumSpec{Family: "sea", U: 8}},
		{Nx: 32, Ny: 32, Method: MethodPlate, Regions: []RegionSpec{
			{Shape: "sector", R0: 2, R: 10, A0: 0, A1: 1, T: 1, Spectrum: gauss(1, 4)}}},
	}
	for i, sc := range scenes {
		if err := sc.Validate(); err != nil {
			t.Errorf("scene %d rejected: %v", i, err)
			continue
		}
		if _, err := Generate(sc); err != nil {
			t.Errorf("scene %d validated but failed to generate: %v", i, err)
		}
	}
}
