package core

import (
	"testing"
)

// FuzzParseScene exercises the JSON scene parser with arbitrary input:
// it must never panic, and any scene it accepts must survive a
// marshal/re-parse round trip and still validate. Mirrors the binary
// parser fuzz in internal/grid.
func FuzzParseScene(f *testing.F) {
	// Seed corpus: valid scenes for every method and spectrum family,
	// plus near-miss invalid inputs.
	seeds := []string{
		`{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":10}}`,
		`{"nx":32,"ny":48,"dx":0.5,"dy":2,"seed":7,"method":"homogeneous","generator":"dft",
		  "spectrum":{"family":"powerlaw","h":1.2,"clx":8,"cly":12,"n":2.5}}`,
		`{"nx":16,"ny":16,"method":"homogeneous","exact_variance":true,
		  "spectrum":{"family":"exponential","h":0.8,"cl":5}}`,
		`{"nx":128,"ny":128,"method":"homogeneous","spectrum":{"family":"sea","u":10}}`,
		`{"nx":64,"ny":64,"method":"plate","regions":[
		  {"shape":"rect","x1":0,"t":4,"spectrum":{"family":"gaussian","h":1,"cl":10}},
		  {"shape":"circle","r":20,"t":4,"spectrum":{"family":"exponential","h":2,"cl":6}}]}`,
		`{"nx":64,"ny":64,"method":"plate","regions":[
		  {"shape":"sector","r0":5,"r":30,"a0":0,"a1":1.5,"t":2,
		   "spectrum":{"family":"powerlaw","h":1,"cl":8,"n":2}},
		  {"shape":"polygon","px":[0,10,5],"py":[0,0,10],"t":1,
		   "spectrum":{"family":"gaussian","h":1,"cl":4}}]}`,
		`{"nx":64,"ny":64,"method":"point","transition_t":10,"points":[
		  {"x":-20,"y":0,"spectrum":{"family":"gaussian","h":1,"cl":10}},
		  {"x":20,"y":0,"spectrum":{"family":"gaussian","h":3,"cl":10}}]}`,
		// The rrsd service's request fixtures (internal/service tests and
		// the scripts/check.sh smoke POST these verbatim), so the fuzzer
		// starts from the exact scenes the network surface serves.
		`{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`,
		`{"nx":64,"ny":64,"method":"plate","regions":[
		  {"shape":"rect","x1":0,"t":4,"spectrum":{"family":"gaussian","h":1,"cl":8}},
		  {"shape":"circle","cx":16,"cy":0,"r":20,"t":4,"spectrum":{"family":"exponential","h":2,"cl":5}}]}`,
		`{"nx":64,"ny":64,"method":"point","transition_t":10,"points":[
		  {"x":-20,"y":0,"spectrum":{"family":"gaussian","h":1,"cl":8}},
		  {"x":20,"y":0,"spectrum":{"family":"gaussian","h":2.5,"cl":8}}]}`,
		`{"nx":64,"ny":64,"method":"homogeneous","generator":"dft",
		  "spectrum":{"family":"gaussian","h":1,"cl":8}}`,
		// Near-misses exercising the field-path validation errors.
		`{"nx":64,"ny":64,"method":"plate","regions":[
		  {"shape":"circle","r":20,"t":4,"spectrum":{"family":"gaussian","h":1,"clx":-2,"cly":5}}]}`,
		`{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"powerlaw","h":1,"cl":8,"n":0.5}}`,
		// Rejected inputs: parse errors and validation failures.
		`{"nx":64,"ny":64,"method":"homogeneous"}`,
		`{"nx":1,"ny":1,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":10}}`,
		`{"nx":64,"ny":64,"method":"warp"}`,
		`{"nx":64,"ny":64,"method":"homogeneous","typo_field":1,
		  "spectrum":{"family":"gaussian","h":1,"cl":10}}`,
		`{"nx":64`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScene(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted scene: it already validated, so it must survive a
		// marshal/re-parse round trip unchanged in validity.
		out, err := sc.MarshalIndent()
		if err != nil {
			t.Fatalf("accepted scene failed to marshal: %v", err)
		}
		back, err := ParseScene(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled scene failed: %v\n%s", err, out)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped scene no longer valid: %v", err)
		}
	})
}
