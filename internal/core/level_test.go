package core

import (
	"math"
	"reflect"
	"testing"

	"roughsurface/internal/convgen"
)

func TestAtLevelNormalizationAndSpacing(t *testing.T) {
	sc := Scene{Nx: 64, Ny: 64, Method: MethodHomogeneous,
		Spectrum: &SpectrumSpec{Family: "gaussian", H: 1, CL: 8}}

	// Level 0 is exactly the normalized scene: the pyramid must not
	// move any scene's content address.
	l0, err := sc.AtLevel(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l0, sc.Normalized()) {
		t.Errorf("AtLevel(0) = %+v differs from Normalized() = %+v", l0, sc.Normalized())
	}

	l3, err := sc.AtLevel(3)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore floatcmp power-of-two spacing scaling is exact in IEEE 754; exactness is the contract
	if l3.Dx != 8 || l3.Dy != 8 {
		t.Errorf("AtLevel(3) spacing = (%g, %g), want (8, 8)", l3.Dx, l3.Dy)
	}
	// Only the spacing changes: zero the spacing on both sides and the
	// views must be identical (seed, spectrum, kernel knobs, ...).
	a, b := l3, l0
	a.Dx, a.Dy, b.Dx, b.Dy = 0, 0, 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("AtLevel(3) changed more than spacing: %+v vs %+v", a, b)
	}

	// Non-unit base spacing scales multiplicatively.
	sc2 := sc
	sc2.Dx, sc2.Dy = 0.5, 2
	l2, err := sc2.AtLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore floatcmp power-of-two spacing scaling is exact in IEEE 754; exactness is the contract
	if l2.Dx != 2 || l2.Dy != 8 {
		t.Errorf("AtLevel(2) of (0.5, 2) spacing = (%g, %g), want (2, 8)", l2.Dx, l2.Dy)
	}

	for _, z := range []int{-1, MaxPyramidLevel + 1} {
		if _, err := sc.AtLevel(z); err == nil {
			t.Errorf("AtLevel(%d) accepted", z)
		}
	}
}

// sampleMoments returns the sample mean and (biased) variance.
func sampleMoments(data []float64) (mean, variance float64) {
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	return mean, variance / float64(len(data))
}

// lagCorr is the normalized sample autocorrelation at lattice lag
// (lx, ly) of an nx×ny field (mean removed).
func lagCorr(data []float64, nx, ny, lx, ly int) float64 {
	mean, variance := sampleMoments(data)
	var sum float64
	var n int
	for j := 0; j+ly < ny; j++ {
		for i := 0; i+lx < nx; i++ {
			sum += (data[j*nx+i] - mean) * (data[(j+ly)*nx+i+lx] - mean)
			n++
		}
	}
	return sum / (float64(n) * variance)
}

// TestLevelTileAgreesWithDecimatedLevel0 renders one window at pyramid
// level 2 and compares its statistics against decimated level-0 ground
// truth on a fixed seed. Pointwise agreement is impossible by design —
// the two levels consume different noise lattices — so the contract is
// statistical: same variance and same autocorrelation at physically
// matched lags, which is precisely what §2.4's re-derived weighting
// array guarantees (and what box-downsampling level-0 samples would
// violate by attenuating variance toward the box filter's response).
func TestLevelTileAgreesWithDecimatedLevel0(t *testing.T) {
	sc := Scene{Nx: 64, Ny: 64, Seed: 7, Method: MethodHomogeneous,
		Spectrum: &SpectrumSpec{Family: "gaussian", H: 1, CL: 8}}
	const (
		z    = 2
		f    = 1 << z
		n0   = 512 // level-0 window edge
		nz   = n0 / f
		seed = uint64(7)
	)

	gen := func(level int) *convgen.Generator {
		view, err := sc.AtLevel(level)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := view.Components()
		if err != nil {
			t.Fatal(err)
		}
		return convgen.NewGenerator(comp.Kernels[0], seed)
	}

	g0 := gen(0).GenerateAt(0, 0, n0, n0)
	dec := make([]float64, nz*nz)
	for j := 0; j < nz; j++ {
		for i := 0; i < nz; i++ {
			dec[j*nz+i] = g0.At(i*f, j*f)
		}
	}
	gz := gen(z).GenerateAt(0, 0, nz, nz)

	// Spacing metadata must reflect the level.
	//lint:ignore floatcmp level spacing is an exact power-of-two multiple of the unit base
	if gz.Dx != float64(f) || gz.Dy != float64(f) {
		t.Errorf("level-%d tile spacing (%g, %g), want (%d, %d)", z, gz.Dx, gz.Dy, f, f)
	}

	meanD, varD := sampleMoments(dec)
	meanZ, varZ := sampleMoments(gz.Data)
	// h=1: means are zero within sampling noise, variances near h².
	if math.Abs(meanD) > 0.1 || math.Abs(meanZ) > 0.1 {
		t.Errorf("sample means %g (decimated), %g (level %d); want ~0", meanD, meanZ, z)
	}
	// 128² samples with cl=8 at spacing 4 give ~4k effective samples:
	// each variance estimate has ~2% noise, and the level render also
	// carries the ≤2% z=2 aliasing deficit (see convgen level test).
	if rel := math.Abs(varZ-varD) / varD; rel > 0.10 {
		t.Errorf("level-%d variance %g vs decimated level-0 %g (rel diff %g > 0.10)", z, varZ, varD, rel)
	}
	// Matched physical lags: level-z lag 1 is level-0 lag f.
	for _, lag := range [][2]int{{1, 0}, {0, 1}} {
		cD := lagCorr(dec, nz, nz, lag[0], lag[1])
		cZ := lagCorr(gz.Data, nz, nz, lag[0], lag[1])
		if math.Abs(cD-cZ) > 0.08 {
			t.Errorf("lag (%d,%d): level-%d correlation %g vs decimated %g (diff > 0.08)",
				lag[0], lag[1], z, cZ, cD)
		}
	}

	// f32 variant: the serving pipeline's single-precision render of the
	// same (level, seed) must track the f64 render sample-for-sample far
	// inside the statistical budgets above.
	g32 := gen(z).GenerateAt32(0, 0, nz, nz)
	maxDiff := 0.0
	w := make([]float64, nz*nz)
	for i, v := range g32.Data {
		w[i] = float64(v)
		if d := math.Abs(w[i] - gz.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("f32 level-%d render diverges from f64 by %g (> 1e-3)", z, maxDiff)
	}
	_, var32 := sampleMoments(w)
	if rel := math.Abs(var32-varD) / varD; rel > 0.10 {
		t.Errorf("f32 level-%d variance %g vs decimated level-0 %g (rel diff %g > 0.10)", z, var32, varD, rel)
	}
}
