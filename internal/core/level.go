package core

import "fmt"

// MaxPyramidLevel bounds the zoom pyramid: level L samples the surface
// at spacing Dx·2^L, so 16 levels span a 65536× range of grid spacing —
// far beyond any correlation length worth resolving — while keeping the
// scale factor exactly representable in a float64.
const MaxPyramidLevel = 16

// AtLevel returns the scene viewed at pyramid level z: the same
// physical surface description with the sample spacing scaled by 2^z.
// Level-z lattice point (i, j) sits at physical (i·Dx·2^z, j·Dy·2^z),
// which coincides with level-0 lattice point (i·2^z, j·2^z) — window
// coordinates rescale with the level while regions, points and
// transition widths stay in physical units, so blend geometry is
// identical at every level.
//
// The returned scene is normalized; AtLevel(0) is exactly Normalized(),
// so level 0 keeps the scene's content address byte-stable. Designing
// kernels from the level view re-derives the weighting array w[m] of
// eqn (15) at the decimated spacing, which keeps the level's statistics
// exact instead of the low-pass-distorted statistics a box decimation
// of level-0 samples would carry (DESIGN.md §14).
func (sc Scene) AtLevel(z int) (Scene, error) {
	if z < 0 || z > MaxPyramidLevel {
		return Scene{}, fmt.Errorf("core: pyramid level %d outside [0, %d]", z, MaxPyramidLevel)
	}
	s := sc.normalized()
	if z == 0 {
		return s, nil
	}
	f := float64(int64(1) << uint(z))
	s.Dx *= f
	s.Dy *= f
	return s, nil
}
