package core

import (
	"fmt"

	"roughsurface/internal/convgen"
	"roughsurface/internal/dftgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/inhomo"
	"roughsurface/internal/rng"
)

// Result bundles a generated surface with the assembled machinery, so
// callers can generate further windows (tiling, streaming) or inspect
// blend weights without re-deriving kernels.
type Result struct {
	Surface *grid.Grid
	// Inhomo is non-nil for plate/point scenes.
	Inhomo *inhomo.Generator
	// Conv is non-nil for homogeneous convolution scenes.
	Conv *convgen.Generator
	// KernelSizes reports the (possibly truncated) kernel extents per
	// component, for cost reporting.
	KernelSizes [][2]int
}

// Generate assembles and runs the scene, returning the surface centered
// on the origin.
func Generate(sc Scene) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := sc.normalized()
	switch s.Method {
	case MethodHomogeneous:
		return generateHomogeneous(s)
	case MethodPlate:
		return generatePlate(s)
	case MethodPoint:
		return generatePoint(s)
	}
	panic("unreachable: Validate accepted unknown method")
}

// MustGenerate is Generate that panics on error, for validated presets.
func MustGenerate(sc Scene) *Result {
	r, err := Generate(sc)
	if err != nil {
		panic(err)
	}
	return r
}

func (sc Scene) designKernel(spec SpectrumSpec) (*convgen.Kernel, error) {
	s, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if sc.ExactVariance {
		return convgen.DesignExact(s, sc.Dx, sc.Dy, sc.KernelSpanCL, sc.KernelEps)
	}
	return convgen.Design(s, sc.Dx, sc.Dy, sc.KernelSpanCL, sc.KernelEps)
}

func generateHomogeneous(sc Scene) (*Result, error) {
	spec, err := sc.Spectrum.Build()
	if err != nil {
		return nil, err
	}
	if sc.Generator == GeneratorDFT {
		gen, err := dftgen.New(spec, sc.Nx, sc.Ny, sc.Dx, sc.Dy)
		if err != nil {
			return nil, err
		}
		return &Result{Surface: gen.Generate(rng.NewGaussian(sc.Seed))}, nil
	}
	kernel, err := sc.designKernel(*sc.Spectrum)
	if err != nil {
		return nil, err
	}
	conv := convgen.NewGenerator(kernel, sc.Seed)
	return &Result{
		Surface:     conv.GenerateCentered(sc.Nx, sc.Ny),
		Conv:        conv,
		KernelSizes: [][2]int{{kernel.Nx, kernel.Ny}},
	}, nil
}

func generatePlate(sc Scene) (*Result, error) {
	regions := make([]inhomo.Region, len(sc.Regions))
	kernels := make([]*convgen.Kernel, len(sc.Regions))
	sizes := make([][2]int, len(sc.Regions))
	for i, rs := range sc.Regions {
		r, err := rs.buildRegion()
		if err != nil {
			return nil, fmt.Errorf("region %d: %w", i, err)
		}
		regions[i] = r
		k, err := sc.designKernel(rs.Spectrum)
		if err != nil {
			return nil, fmt.Errorf("region %d: %w", i, err)
		}
		kernels[i] = k
		sizes[i] = [2]int{k.Nx, k.Ny}
	}
	blender, err := inhomo.NewPlateBlender(regions)
	if err != nil {
		return nil, err
	}
	gen, err := inhomo.NewGenerator(kernels, blender, sc.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Surface:     gen.GenerateCentered(sc.Nx, sc.Ny),
		Inhomo:      gen,
		KernelSizes: sizes,
	}, nil
}

func generatePoint(sc Scene) (*Result, error) {
	// Deduplicate identical spectra into shared components, so the ten
	// points of Fig. 4 need only four kernels.
	index := map[string]int{}
	var kernels []*convgen.Kernel
	var sizes [][2]int
	points := make([]inhomo.Point, len(sc.Points))
	for i, ps := range sc.Points {
		key := ps.Spectrum.key()
		comp, ok := index[key]
		if !ok {
			k, err := sc.designKernel(ps.Spectrum)
			if err != nil {
				return nil, fmt.Errorf("point %d: %w", i, err)
			}
			comp = len(kernels)
			index[key] = comp
			kernels = append(kernels, k)
			sizes = append(sizes, [2]int{k.Nx, k.Ny})
		}
		points[i] = inhomo.Point{X: ps.X, Y: ps.Y, Component: comp}
	}
	blender, err := inhomo.NewPointBlender(points, sc.TransitionT, len(kernels))
	if err != nil {
		return nil, err
	}
	gen, err := inhomo.NewGenerator(kernels, blender, sc.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Surface:     gen.GenerateCentered(sc.Nx, sc.Ny),
		Inhomo:      gen,
		KernelSizes: sizes,
	}, nil
}
