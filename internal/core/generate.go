package core

import (
	"fmt"

	"roughsurface/internal/convgen"
	"roughsurface/internal/dftgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/inhomo"
	"roughsurface/internal/rng"
)

// Result bundles a generated surface with the assembled machinery, so
// callers can generate further windows (tiling, streaming) or inspect
// blend weights without re-deriving kernels.
type Result struct {
	Surface *grid.Grid
	// Inhomo is non-nil for plate/point scenes.
	Inhomo *inhomo.Generator
	// Conv is non-nil for homogeneous convolution scenes.
	Conv *convgen.Generator
	// KernelSizes reports the (possibly truncated) kernel extents per
	// component, for cost reporting.
	KernelSizes [][2]int
}

// Generate assembles and runs the scene, returning the surface centered
// on the origin.
func Generate(sc Scene) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := sc.normalized()
	switch s.Method {
	case MethodHomogeneous:
		return generateHomogeneous(s)
	case MethodPlate:
		return generatePlate(s)
	case MethodPoint:
		return generatePoint(s)
	}
	panic("unreachable: Validate accepted unknown method")
}

// MustGenerate is Generate that panics on error, for validated presets.
func MustGenerate(sc Scene) *Result {
	r, err := Generate(sc)
	if err != nil {
		panic(err)
	}
	return r
}

// Components is the scene's generation machinery without a materialized
// surface: the designed convolution kernels plus, for plate/point
// scenes, the blender that mixes them. It is the window-server entry
// point — a caller holding Components can pair the kernels with
// convgen/inhomo generators (any seed) and render arbitrary windows of
// the same deterministic surface on demand, amortizing kernel design
// across requests.
type Components struct {
	// Kernels holds one designed kernel per component (exactly one for
	// homogeneous scenes).
	Kernels []*convgen.Kernel
	// Blender is non-nil for plate/point scenes.
	Blender inhomo.Blender
	// KernelSizes reports the (possibly truncated) kernel extents per
	// component, for cost reporting.
	KernelSizes [][2]int
}

// Components validates the scene and designs its kernels (and blender)
// without generating samples. Scenes with the dft generator have no
// windowed form — the direct spectral method synthesizes one periodic
// grid, not an unbounded surface — so they are rejected here even
// though Generate accepts them.
func (sc Scene) Components() (*Components, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := sc.normalized()
	switch s.Method {
	case MethodHomogeneous:
		if s.Generator == GeneratorDFT {
			return nil, fmt.Errorf("core: generator: dft has no windowed components (one periodic grid, not an unbounded surface); use conv")
		}
		k, err := s.designKernel(*s.Spectrum)
		if err != nil {
			return nil, err
		}
		return &Components{
			Kernels:     []*convgen.Kernel{k},
			KernelSizes: [][2]int{{k.Nx, k.Ny}},
		}, nil
	case MethodPlate:
		return s.plateComponents()
	case MethodPoint:
		return s.pointComponents()
	}
	panic("unreachable: Validate accepted unknown method")
}

func (sc Scene) designKernel(spec SpectrumSpec) (*convgen.Kernel, error) {
	s, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if sc.ExactVariance {
		return convgen.DesignExact(s, sc.Dx, sc.Dy, sc.KernelSpanCL, sc.KernelEps)
	}
	return convgen.Design(s, sc.Dx, sc.Dy, sc.KernelSpanCL, sc.KernelEps)
}

func generateHomogeneous(sc Scene) (*Result, error) {
	spec, err := sc.Spectrum.Build()
	if err != nil {
		return nil, err
	}
	if sc.Generator == GeneratorDFT {
		gen, err := dftgen.New(spec, sc.Nx, sc.Ny, sc.Dx, sc.Dy)
		if err != nil {
			return nil, err
		}
		return &Result{Surface: gen.Generate(rng.NewGaussian(sc.Seed))}, nil
	}
	kernel, err := sc.designKernel(*sc.Spectrum)
	if err != nil {
		return nil, err
	}
	conv := convgen.NewGenerator(kernel, sc.Seed)
	return &Result{
		Surface:     conv.GenerateCentered(sc.Nx, sc.Ny),
		Conv:        conv,
		KernelSizes: [][2]int{{kernel.Nx, kernel.Ny}},
	}, nil
}

func (sc Scene) plateComponents() (*Components, error) {
	regions := make([]inhomo.Region, len(sc.Regions))
	kernels := make([]*convgen.Kernel, len(sc.Regions))
	sizes := make([][2]int, len(sc.Regions))
	for i, rs := range sc.Regions {
		r, err := rs.buildRegion()
		if err != nil {
			return nil, fmt.Errorf("regions[%d]: %w", i, err)
		}
		regions[i] = r
		k, err := sc.designKernel(rs.Spectrum)
		if err != nil {
			return nil, fmt.Errorf("regions[%d]: %w", i, err)
		}
		kernels[i] = k
		sizes[i] = [2]int{k.Nx, k.Ny}
	}
	blender, err := inhomo.NewPlateBlender(regions)
	if err != nil {
		return nil, err
	}
	return &Components{Kernels: kernels, Blender: blender, KernelSizes: sizes}, nil
}

func (sc Scene) pointComponents() (*Components, error) {
	// Deduplicate identical spectra into shared components, so the ten
	// points of Fig. 4 need only four kernels.
	index := map[string]int{}
	var kernels []*convgen.Kernel
	var sizes [][2]int
	points := make([]inhomo.Point, len(sc.Points))
	for i, ps := range sc.Points {
		key := ps.Spectrum.key()
		comp, ok := index[key]
		if !ok {
			k, err := sc.designKernel(ps.Spectrum)
			if err != nil {
				return nil, fmt.Errorf("points[%d]: %w", i, err)
			}
			comp = len(kernels)
			index[key] = comp
			kernels = append(kernels, k)
			sizes = append(sizes, [2]int{k.Nx, k.Ny})
		}
		points[i] = inhomo.Point{X: ps.X, Y: ps.Y, Component: comp}
	}
	blender, err := inhomo.NewPointBlender(points, sc.TransitionT, len(kernels))
	if err != nil {
		return nil, err
	}
	return &Components{Kernels: kernels, Blender: blender, KernelSizes: sizes}, nil
}

func generatePlate(sc Scene) (*Result, error) {
	comp, err := sc.plateComponents()
	if err != nil {
		return nil, err
	}
	gen, err := inhomo.NewGenerator(comp.Kernels, comp.Blender, sc.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Surface:     gen.GenerateCentered(sc.Nx, sc.Ny),
		Inhomo:      gen,
		KernelSizes: comp.KernelSizes,
	}, nil
}

func generatePoint(sc Scene) (*Result, error) {
	comp, err := sc.pointComponents()
	if err != nil {
		return nil, err
	}
	gen, err := inhomo.NewGenerator(comp.Kernels, comp.Blender, sc.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Surface:     gen.GenerateCentered(sc.Nx, sc.Ny),
		Inhomo:      gen,
		KernelSizes: comp.KernelSizes,
	}, nil
}
