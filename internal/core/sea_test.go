package core

import (
	"math"
	"testing"
)

func TestSeaSpectrumSpec(t *testing.T) {
	s, err := SpectrumSpec{Family: "sea", U: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sea" {
		t.Errorf("name %q", s.Name())
	}
	// h is derived from the wind speed: U=5 → ~0.133 m.
	if h := s.SigmaH(); math.Abs(h-0.133) > 0.01 {
		t.Errorf("derived h = %g", h)
	}
	if _, err := (SpectrumSpec{Family: "sea"}).Build(); err == nil {
		t.Error("sea without wind speed accepted")
	}
}

func TestSeaSceneGeneratesWithCorrectVariance(t *testing.T) {
	// The PM autocorrelation oscillates over several dominant
	// wavelengths, so the kernel span must cover them: span 40·cl at
	// dx = 0.5 m. Surface 128 m square.
	sc := Scene{
		Nx: 256, Ny: 256, Dx: 0.5, Dy: 0.5,
		Method:       MethodHomogeneous,
		Spectrum:     &SpectrumSpec{Family: "sea", U: 5},
		Seed:         9,
		KernelSpanCL: 40,
		KernelEps:    1e-5,
	}
	res, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Spectrum.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := spec.SigmaH()
	var ms float64
	for _, v := range res.Surface.Data {
		ms += v * v
	}
	got := math.Sqrt(ms / float64(len(res.Surface.Data)))
	if math.Abs(got-h)/h > 0.25 {
		t.Errorf("sea surface σ = %g, want %g", got, h)
	}
}

func TestSeaKeyDistinguishesWindSpeeds(t *testing.T) {
	a := SpectrumSpec{Family: "sea", U: 5}
	b := SpectrumSpec{Family: "sea", U: 10}
	if a.key() == b.key() {
		t.Error("different wind speeds collide in dedup key")
	}
}
