package propag

import (
	"math"
	"testing"

	"roughsurface/internal/oned"
)

// TestPathLossOver1DProfiles drives the propagation model with profiles
// from the 1D generator — the exact workflow of the paper's program of
// work (rough profile → propagation characteristic).
func TestPathLossOver1DProfiles(t *testing.T) {
	link := Link{Lambda: 0.125, TxH: 1.5, RxH: 1.5}

	mkProfile := func(h float64, seed uint64) ([]float64, []float64) {
		s := oned.MustGaussian(h, 10)
		k, err := oned.DesignKernel(s, 1, 8, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		heights := oned.NewGenerator(k, seed).GenerateCentered(801)
		dists := make([]float64, len(heights))
		for i := range dists {
			dists[i] = float64(i)
		}
		return heights, dists
	}

	// Average diffraction loss over several realizations: rougher
	// profiles lose more.
	avgLoss := func(h float64) float64 {
		var total float64
		const trials = 6
		for seed := uint64(1); seed <= trials; seed++ {
			heights, dists := mkProfile(h, seed)
			b, err := PathLoss(heights, dists, link)
			if err != nil {
				t.Fatal(err)
			}
			total += b.DiffractionDB
		}
		return total / trials
	}

	calm := avgLoss(0.3)
	rough := avgLoss(3.0)
	if !(rough > calm+10) {
		t.Errorf("1D roughness-loss relation broken: calm %g dB vs rough %g dB", calm, rough)
	}
}

// TestRangeShrinksWithRoughness1D: the communication-distance estimate
// (paper ref [12]) decreases as the profile roughens.
func TestRangeShrinksWithRoughness1D(t *testing.T) {
	link := Link{Lambda: 0.125, TxH: 1.5, RxH: 1.5}
	budget := 105.0

	rangeFor := func(h float64) float64 {
		s := oned.MustExponential(h, 8)
		k, err := oned.DesignKernel(s, 1, 8, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		heights := oned.NewGenerator(k, 3).GenerateAt(0, 1601)
		dists := make([]float64, len(heights))
		for i := range dists {
			dists[i] = float64(i)
		}
		// Evaluate loss at increasing truncations of the same profile.
		best := 0.0
		for _, n := range []int{100, 200, 400, 800, 1600} {
			b, err := PathLoss(heights[:n+1], dists[:n+1], link)
			if err != nil {
				t.Fatal(err)
			}
			if b.TotalDB <= budget {
				best = dists[n]
			}
		}
		return best
	}

	calmRange := rangeFor(0.1)
	roughRange := rangeFor(4.0)
	if !(calmRange > roughRange) {
		t.Errorf("range did not shrink with roughness: calm %g vs rough %g", calmRange, roughRange)
	}
	if calmRange < 800 {
		t.Errorf("nearly flat ground should reach far, got %g", calmRange)
	}
}

// TestFlatProfileInvariance: translating a flat profile vertically must
// not change the loss (only relative heights matter).
func TestFlatProfileInvariance(t *testing.T) {
	link := Link{Lambda: 0.125, TxH: 2, RxH: 2}
	dists := make([]float64, 101)
	for i := range dists {
		dists[i] = float64(i * 3)
	}
	flat0 := make([]float64, 101)
	flat9 := make([]float64, 101)
	for i := range flat9 {
		flat9[i] = 9.5
	}
	a, err := PathLoss(flat0, dists, link)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PathLoss(flat9, dists, link)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalDB-b.TotalDB) > 1e-9 {
		t.Errorf("vertical translation changed loss: %g vs %g", a.TotalDB, b.TotalDB)
	}
}
