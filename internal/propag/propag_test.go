package propag

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/spectrum"
)

func flatGrid(nx, ny int, level float64) *grid.Grid {
	g := grid.NewCentered(nx, ny, 1, 1)
	g.Fill(level)
	return g
}

func TestBilinearExactOnNodesAndMidpoints(t *testing.T) {
	g := grid.New(3, 3)
	// f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation.
	for iy := 0; iy < 3; iy++ {
		for ix := 0; ix < 3; ix++ {
			g.Set(ix, iy, 2*float64(ix)+3*float64(iy))
		}
	}
	for _, p := range [][2]float64{{0, 0}, {1, 1}, {0.5, 0.5}, {1.25, 0.75}, {2, 2}} {
		got, err := Bilinear(g, p[0], p[1])
		if err != nil {
			t.Fatalf("point %v: %v", p, err)
		}
		want := 2*p[0] + 3*p[1]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Bilinear(%v) = %g want %g", p, got, want)
		}
	}
}

func TestBilinearRejectsOutside(t *testing.T) {
	g := flatGrid(4, 4, 0)
	if _, err := Bilinear(g, 100, 0); err == nil {
		t.Error("outside point accepted")
	}
}

func TestProfileGeometry(t *testing.T) {
	g := flatGrid(64, 64, 1.5)
	h, d, err := Profile(g, -20, 0, 20, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 21 || len(d) != 21 {
		t.Fatal("wrong sample count")
	}
	if d[0] != 0 || math.Abs(d[20]-40) > 1e-12 {
		t.Errorf("distance endpoints %g..%g", d[0], d[20])
	}
	for _, v := range h {
		if !approx.Exact(v, 1.5) {
			t.Fatal("flat profile should be constant")
		}
	}
	if _, _, err := Profile(g, 0, 0, 0, 0, 10); err == nil {
		t.Error("zero-length profile accepted")
	}
	if _, _, err := Profile(g, 0, 0, 1, 0, 1); err == nil {
		t.Error("single-sample profile accepted")
	}
}

func TestFreeSpaceLossKnownValue(t *testing.T) {
	// 2.4 GHz (λ=0.125 m), 100 m: 20·log10(4π·100/0.125) ≈ 80.05 dB.
	got := FreeSpaceLossDB(100, 0.125)
	if math.Abs(got-80.05) > 0.02 {
		t.Errorf("FSPL = %g want ≈80.05", got)
	}
	// Doubling distance adds 6.02 dB.
	if d := FreeSpaceLossDB(200, 0.125) - got; math.Abs(d-6.0206) > 1e-3 {
		t.Errorf("doubling distance added %g dB", d)
	}
}

func TestKnifeEdgeLossAnchors(t *testing.T) {
	// Grazing incidence (ν=0): ITU approximation gives ≈6.0 dB.
	if got := KnifeEdgeLossDB(0); math.Abs(got-6.0) > 0.1 {
		t.Errorf("J(0) = %g want ≈6.0", got)
	}
	// Deep shadow grows monotonically.
	prev := KnifeEdgeLossDB(0)
	for _, nu := range []float64{0.5, 1, 2, 5, 10} {
		cur := KnifeEdgeLossDB(nu)
		if cur <= prev {
			t.Errorf("J not increasing at ν=%g", nu)
		}
		prev = cur
	}
	// Clear path: no loss.
	if KnifeEdgeLossDB(-1) != 0 {
		t.Error("J below -0.78 should be 0")
	}
	// Asymptote: J(ν) ≈ 13 + 20·log10(ν) for large ν.
	if got, want := KnifeEdgeLossDB(10), 13+20*math.Log10(10.0); math.Abs(got-want) > 0.3 {
		t.Errorf("J(10) = %g want ≈%g", got, want)
	}
}

func TestFresnelNuScaling(t *testing.T) {
	nu := FresnelNu(10, 100, 100, 0.125)
	if nu <= 0 {
		t.Fatal("positive obstacle should give positive ν")
	}
	// ν is linear in h.
	if got := FresnelNu(20, 100, 100, 0.125); math.Abs(got-2*nu) > 1e-12 {
		t.Error("ν not linear in h")
	}
	// Longer wavelength diffracts more easily (smaller ν).
	if got := FresnelNu(10, 100, 100, 0.5); got >= nu {
		t.Error("ν should shrink with wavelength")
	}
}

func TestPathLossFlatTerrainIsFreeSpace(t *testing.T) {
	g := flatGrid(256, 64, 0)
	h, d, err := Profile(g, -100, 0, 100, 0, 201)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PathLoss(h, d, Link{Lambda: 0.125, TxH: 5, RxH: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.DiffractionDB != 0 {
		t.Errorf("flat terrain diffracting %g dB", b.DiffractionDB)
	}
	if math.Abs(b.FreeSpaceDB-FreeSpaceLossDB(200, 0.125)) > 1e-9 {
		t.Errorf("free-space term %g", b.FreeSpaceDB)
	}
	if !approx.Exact(b.TotalDB, b.FreeSpaceDB+b.DiffractionDB) {
		t.Error("total inconsistent")
	}
}

func TestPathLossSingleObstacleMatchesKnifeEdge(t *testing.T) {
	// A single spike mid-path between low antennas: Deygout must find
	// exactly that edge and charge the single-knife-edge loss for it.
	n := 201
	heights := make([]float64, n)
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = float64(i) // 200 units total
	}
	heights[100] = 8 // spike at midpoint
	link := Link{Lambda: 0.125, TxH: 2, RxH: 2}
	b, err := PathLoss(heights, dists, link)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Edges) == 0 || b.Edges[0] != 100 {
		t.Fatalf("principal edge %v, want index 100 first", b.Edges)
	}
	nu := FresnelNu(8-2, 100, 100, 0.125)
	want := KnifeEdgeLossDB(nu)
	if math.Abs(b.DiffractionDB-want) > 0.5 {
		t.Errorf("diffraction %g dB, want ≈%g (single edge)", b.DiffractionDB, want)
	}
}

func TestPathLossMonotoneInObstacleHeight(t *testing.T) {
	prev := -1.0
	for _, hob := range []float64{1, 3, 6, 12} {
		n := 101
		heights := make([]float64, n)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = float64(i * 2)
		}
		heights[50] = hob
		b, err := PathLoss(heights, dists, Link{Lambda: 0.125, TxH: 1, RxH: 1})
		if err != nil {
			t.Fatal(err)
		}
		if b.DiffractionDB < prev {
			t.Errorf("loss decreased for taller obstacle %g", hob)
		}
		prev = b.DiffractionDB
	}
}

func TestPathLossValidation(t *testing.T) {
	if _, err := PathLoss([]float64{1, 2}, []float64{0}, Link{Lambda: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PathLoss([]float64{1, 2}, []float64{0, 10}, Link{}); err == nil {
		t.Error("zero wavelength accepted")
	}
	if _, err := PathLoss([]float64{1, 2}, []float64{10, 0}, Link{Lambda: 1}); err == nil {
		t.Error("non-increasing distances accepted")
	}
}

func TestSweepOverRoughSurface(t *testing.T) {
	// Rough terrain: loss grows (at least weakly) with distance, and a
	// rougher surface yields a shorter usable range on average — the
	// qualitative relation the paper's program of work studies.
	mk := func(h float64, seed uint64) *grid.Grid {
		s := spectrum.MustGaussian(h, 8, 8)
		k := convgen.MustDesign(s, 1, 1, 8, 1e-4)
		return convgen.NewGenerator(k, seed).GenerateCentered(512, 128)
	}
	link := Link{Lambda: 0.125, TxH: 1.5, RxH: 1.5}
	distances := []float64{40, 80, 120, 160, 200}

	smooth := mk(0.3, 4)
	rough := mk(3.0, 4) // same noise, 10x height scale
	rs, err := Sweep(smooth, -240, 0, 1, 0, distances, link, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Sweep(rough, -240, 0, 1, 0, distances, link, 2)
	if err != nil {
		t.Fatal(err)
	}
	var smoothTotal, roughTotal float64
	for i := range rs {
		smoothTotal += rs[i].TotalDB
		roughTotal += rr[i].TotalDB
	}
	if roughTotal <= smoothTotal {
		t.Errorf("rough terrain not lossier: %g vs %g dB aggregate", roughTotal, smoothTotal)
	}
	// Loss at the longest distance exceeds loss at the shortest.
	if rr[len(rr)-1].TotalDB <= rr[0].TotalDB {
		t.Error("loss did not grow with distance on rough terrain")
	}

	// Range estimation is consistent with the sweep it came from.
	budget := rs[2].TotalDB // whatever loss the 120-unit link sees
	if got := RangeAt(rs, budget); got < 120 {
		t.Errorf("RangeAt(%g dB) = %g, want ≥ 120", budget, got)
	}
	if RangeAt(rs, 0) != 0 {
		t.Error("impossible budget should yield zero range")
	}
}

func TestSweepValidation(t *testing.T) {
	g := flatGrid(64, 64, 0)
	link := Link{Lambda: 0.125}
	if _, err := Sweep(g, 0, 0, 0, 0, []float64{10}, link, 2); err == nil {
		t.Error("zero direction accepted")
	}
	if _, err := Sweep(g, 0, 0, 1, 0, []float64{-5}, link, 2); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := Sweep(g, 0, 0, 1, 0, []float64{1e6}, link, 2); err == nil {
		t.Error("out-of-extent sweep accepted")
	}
}
