// Package propag is the library's application extension: first-order
// radio propagation over generated rough terrain. The paper's program of
// work (§1, §5 and refs [11–13]) uses surfaces like these to study
// propagation characteristics for wireless sensor networks; this package
// provides the standard flat-earth machinery for that study — terrain
// profile extraction, free-space loss, and multiple knife-edge
// diffraction by the Deygout construction — without claiming the
// full-wave (FVTD) fidelity of the authors' solver. See DESIGN.md §6.
package propag

import (
	"fmt"
	"math"

	"roughsurface/internal/approx"
	"roughsurface/internal/grid"
)

// Profile samples the surface heights along the segment from (x0, y0) to
// (x1, y1) at n evenly spaced points (inclusive of both ends), bilinearly
// interpolated. It returns the heights and the along-path distances.
func Profile(g *grid.Grid, x0, y0, x1, y1 float64, n int) (heights, dists []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("propag: profile needs at least 2 samples, got %d", n)
	}
	total := math.Hypot(x1-x0, y1-y0)
	if total == 0 {
		return nil, nil, fmt.Errorf("propag: zero-length profile")
	}
	heights = make([]float64, n)
	dists = make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		x := x0 + t*(x1-x0)
		y := y0 + t*(y1-y0)
		h, err := Bilinear(g, x, y)
		if err != nil {
			return nil, nil, err
		}
		heights[i] = h
		dists[i] = t * total
	}
	return heights, dists, nil
}

// Bilinear interpolates the surface height at physical point (x, y).
// The point must lie within the sampled extent.
func Bilinear(g *grid.Grid, x, y float64) (float64, error) {
	fx := (x - g.X0) / g.Dx
	fy := (y - g.Y0) / g.Dy
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	if ix < 0 || iy < 0 || ix >= g.Nx-1 || iy >= g.Ny-1 {
		// Tolerate exact upper-edge hits.
		if ix == g.Nx-1 && approx.Exact(fx, float64(ix)) {
			ix--
		}
		if iy == g.Ny-1 && approx.Exact(fy, float64(iy)) {
			iy--
		}
		if ix < 0 || iy < 0 || ix >= g.Nx-1 || iy >= g.Ny-1 {
			return 0, fmt.Errorf("propag: point (%g, %g) outside surface extent", x, y)
		}
	}
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	v00 := g.At(ix, iy)
	v10 := g.At(ix+1, iy)
	v01 := g.At(ix, iy+1)
	v11 := g.At(ix+1, iy+1)
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty, nil
}

// FreeSpaceLossDB is the Friis free-space path loss 20·log10(4πd/λ).
func FreeSpaceLossDB(d, lambda float64) float64 {
	if d <= 0 || lambda <= 0 {
		return 0
	}
	return 20 * math.Log10(4*math.Pi*d/lambda)
}

// FresnelNu is the dimensionless knife-edge diffraction parameter
// ν = h·sqrt(2(d1+d2)/(λ·d1·d2)) for an edge of effective height h
// (above the direct ray) at distances d1, d2 from the terminals.
func FresnelNu(h, d1, d2, lambda float64) float64 {
	if d1 <= 0 || d2 <= 0 || lambda <= 0 {
		return math.Inf(-1)
	}
	return h * math.Sqrt(2*(d1+d2)/(lambda*d1*d2))
}

// KnifeEdgeLossDB evaluates the single knife-edge diffraction loss with
// the ITU-R P.526 approximation: J(ν) = 6.9 + 20·log10(√((ν−0.1)²+1) +
// ν − 0.1) for ν > −0.78, and 0 below. J(0) ≈ 6.0 dB (half-plane
// grazing), rising for positive ν.
func KnifeEdgeLossDB(nu float64) float64 {
	if nu <= -0.78 {
		return 0
	}
	v := nu - 0.1
	return 6.9 + 20*math.Log10(math.Sqrt(v*v+1)+v)
}

// Link describes the radio link geometry over a profile.
type Link struct {
	// Lambda is the carrier wavelength in the same units as the surface
	// grid (e.g. grid units of meters and λ = 0.125 for 2.4 GHz).
	Lambda float64
	// TxH and RxH are antenna heights above the local terrain at the
	// profile's first and last sample.
	TxH, RxH float64
}

// Breakdown reports the components of a path-loss evaluation.
type Breakdown struct {
	FreeSpaceDB   float64
	DiffractionDB float64
	TotalDB       float64
	// Edges lists the profile indices Deygout selected as knife edges,
	// principal edge first.
	Edges []int
}

// maxDeygoutDepth bounds the recursive edge decomposition; three levels
// (principal + two secondary) is the standard construction.
const maxDeygoutDepth = 3

// PathLoss evaluates free-space plus Deygout multiple-knife-edge
// diffraction loss over a terrain profile (heights at dists, both from
// Profile). The direct ray runs from TxH above the first sample to RxH
// above the last.
func PathLoss(heights, dists []float64, link Link) (Breakdown, error) {
	n := len(heights)
	if n != len(dists) {
		return Breakdown{}, fmt.Errorf("propag: heights/dists length mismatch %d/%d", n, len(dists))
	}
	if n < 2 {
		return Breakdown{}, fmt.Errorf("propag: profile too short")
	}
	if !(link.Lambda > 0) {
		return Breakdown{}, fmt.Errorf("propag: wavelength must be positive, got %g", link.Lambda)
	}
	d := dists[n-1] - dists[0]
	if d <= 0 {
		return Breakdown{}, fmt.Errorf("propag: profile distances not increasing")
	}
	var b Breakdown
	b.FreeSpaceDB = FreeSpaceLossDB(d, link.Lambda)
	txZ := heights[0] + link.TxH
	rxZ := heights[n-1] + link.RxH
	b.DiffractionDB = deygout(heights, dists, 0, n-1, txZ, rxZ, link.Lambda, maxDeygoutDepth, &b.Edges)
	b.TotalDB = b.FreeSpaceDB + b.DiffractionDB
	return b, nil
}

// deygout finds the principal knife edge between profile indices lo and
// hi (ray endpoints at heights zLo, zHi), adds its loss, and recurses on
// the sub-paths.
func deygout(heights, dists []float64, lo, hi int, zLo, zHi, lambda float64, depth int, edges *[]int) float64 {
	if depth == 0 || hi-lo < 2 {
		return 0
	}
	bestIdx := -1
	bestNu := math.Inf(-1)
	span := dists[hi] - dists[lo]
	for i := lo + 1; i < hi; i++ {
		d1 := dists[i] - dists[lo]
		d2 := dists[hi] - dists[i]
		ray := zLo + (zHi-zLo)*d1/span
		nu := FresnelNu(heights[i]-ray, d1, d2, lambda)
		if nu > bestNu {
			bestNu = nu
			bestIdx = i
		}
	}
	if bestIdx < 0 || bestNu <= -0.78 {
		return 0 // effectively clear path
	}
	loss := KnifeEdgeLossDB(bestNu)
	*edges = append(*edges, bestIdx)
	if bestNu <= 0 {
		// Grazing principal edge: charge its (small) loss but do not
		// decompose further — recursing below an insignificant edge
		// re-counts the same physical bump from adjacent samples and is
		// the classic Deygout overestimation failure mode.
		return loss
	}
	edgeZ := heights[bestIdx]
	loss += deygout(heights, dists, lo, bestIdx, zLo, edgeZ, lambda, depth-1, edges)
	loss += deygout(heights, dists, bestIdx, hi, edgeZ, zHi, lambda, depth-1, edges)
	return loss
}

// SweepResult is one distance sample of a link-budget sweep.
type SweepResult struct {
	Distance float64
	Breakdown
}

// Sweep evaluates PathLoss from a fixed transmitter at (x0, y0) to
// receivers at increasing distances along direction (ux, uy) (unit
// vector not required; it is normalized). Distances must be positive and
// within the surface extent. samplesPerUnit controls profile resolution
// (samples ≈ distance × samplesPerUnit, at least 16).
func Sweep(g *grid.Grid, x0, y0, ux, uy float64, distances []float64, link Link, samplesPerUnit float64) ([]SweepResult, error) {
	norm := math.Hypot(ux, uy)
	if norm == 0 {
		return nil, fmt.Errorf("propag: zero sweep direction")
	}
	ux /= norm
	uy /= norm
	out := make([]SweepResult, 0, len(distances))
	for _, d := range distances {
		if d <= 0 {
			return nil, fmt.Errorf("propag: non-positive sweep distance %g", d)
		}
		n := int(d * samplesPerUnit)
		if n < 16 {
			n = 16
		}
		heights, dists, err := Profile(g, x0, y0, x0+d*ux, y0+d*uy, n)
		if err != nil {
			return nil, err
		}
		b, err := PathLoss(heights, dists, link)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepResult{Distance: d, Breakdown: b})
	}
	return out, nil
}

// RangeAt returns the largest swept distance whose total loss stays at
// or below maxLossDB, or 0 if none qualifies — the "communication
// distance" estimate of the paper's ref [12].
func RangeAt(results []SweepResult, maxLossDB float64) float64 {
	best := 0.0
	for _, r := range results {
		if r.TotalDB <= maxLossDB && r.Distance > best {
			best = r.Distance
		}
	}
	return best
}
