module roughsurface

go 1.22
