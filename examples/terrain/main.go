// Terrain: build the kind of mixed natural environment the paper's
// introduction motivates — a desert, a vegetable field and a pond in one
// scene — with the point-oriented method, and export it for plotting.
//
//	go run ./examples/terrain
//
// Writes terrain.ppm (color heightmap) and terrain.grid (binary) to the
// working directory.
package main

import (
	"fmt"
	"log"
	"os"

	"roughsurface/internal/core"
	"roughsurface/internal/figures"
	"roughsurface/internal/render"
)

func main() {
	// Physical 1024×1024 window. The three habitats of the paper's
	// introduction:
	//  - desert (west): smooth long dunes — Gaussian, large cl;
	//  - vegetable field (east): rough short clutter — exponential,
	//    small cl;
	//  - sea (south): a fully developed Pierson–Moskowitz wind sea at
	//    5 m/s (height deviation derived from the wind speed: ~0.13 m).
	desert := core.SpectrumSpec{Family: "gaussian", H: 1.8, CL: 50}
	field := core.SpectrumSpec{Family: "exponential", H: 0.9, CL: 12}
	sea := core.SpectrumSpec{Family: "sea", U: 5}
	seaSpec, err := sea.Build()
	if err != nil {
		log.Fatal(err)
	}

	scene := core.Scene{
		Nx: 512, Ny: 512, Dx: 2, Dy: 2, // 1024 physical units at dx=2
		Method:      core.MethodPoint,
		TransitionT: 80,
		Seed:        7,
		Points: []core.PointSpec{
			{X: -300, Y: 150, Spectrum: desert},
			{X: -150, Y: 300, Spectrum: desert},
			{X: 300, Y: 150, Spectrum: field},
			{X: 150, Y: 300, Spectrum: field},
			{X: 0, Y: -280, Spectrum: sea},
		},
	}
	res, err := core.Generate(scene)
	if err != nil {
		log.Fatal(err)
	}
	surf := res.Surface

	// Probe each habitat the same way the figure harness does.
	fig := figures.Figure{Scene: scene, Probes: []figures.Probe{
		{Name: "desert", Group: "desert", X0: -400, Y0: 120, W: 220, H: 220, WantH: desert.H, Spectrum: desert.Family},
		{Name: "field", Group: "field", X0: 180, Y0: 120, W: 220, H: 220, WantH: field.H, Spectrum: field.Family},
		{Name: "sea", Group: "sea", X0: -110, Y0: -400, W: 220, H: 220, WantH: seaSpec.SigmaH(), Spectrum: sea.Family},
	}}
	results := figures.Evaluate(fig, surf)
	fmt.Print(figures.FormatResults(results))

	if err := surf.SaveFile("terrain.grid"); err != nil {
		log.Fatal(err)
	}
	if err := render.SavePPM("terrain.ppm", surf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote terrain.grid and terrain.ppm")
	if err := render.ASCII(os.Stdout, surf, 72); err != nil {
		log.Fatal(err)
	}
}
