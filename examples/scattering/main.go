// Scattering: evaluate classical rough-surface scattering observables
// on generated terrain — the application the paper's introduction opens
// with (radar/remote-sensing scattering from random rough surfaces).
// Prints the geometric-optics backscatter curve σ⁰(θ) for a smooth and
// a rough Gaussian surface, and the coherent-reflection (Rayleigh)
// damping versus roughness.
//
//	go run ./examples/scattering
package main

import (
	"fmt"
	"log"
	"math"

	"roughsurface/internal/convgen"
	"roughsurface/internal/scatter"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func main() {
	mk := func(h float64) ( /*surf*/ *scatter.SlopeHistogram, float64) {
		s := spectrum.MustGaussian(h, 8, 8)
		k := convgen.MustDesign(s, 1, 1, 8, 1e-5)
		surf := convgen.NewGenerator(k, 42).GenerateCentered(512, 512)
		sx2, sy2 := stats.SlopeVariance(surf)
		s2 := (sx2 + sy2) / 2
		hist, err := scatter.NewSlopeHistogram(surf, 48, 6*math.Sqrt(s2))
		if err != nil {
			log.Fatal(err)
		}
		return hist, s2
	}

	smooth, s2smooth := mk(0.4)
	rough, s2rough := mk(2.0)
	fmt.Printf("slope variances: smooth %.4f, rough %.4f (analytic 2h²/cl²: %.4f, %.4f)\n\n",
		s2smooth, s2rough, 2*0.4*0.4/64, 2*2.0*2.0/64)

	fmt.Println("geometric-optics backscatter σ⁰(θ) [dB], |R| = 1:")
	fmt.Printf("%8s %12s %12s\n", "θ [deg]", "smooth", "rough")
	for _, deg := range []float64{0, 5, 10, 15, 20, 30} {
		th := deg * math.Pi / 180
		a := scatter.ToDB([]float64{scatter.GOBackscatter(smooth, th, 1)})[0]
		b := scatter.ToDB([]float64{scatter.GOBackscatter(rough, th, 1)})[0]
		fmt.Printf("%8.0f %12.2f %12.2f\n", deg, a, b)
	}
	fmt.Println("\n(smooth wins at nadir, rough wins off-nadir — the classic crossover)")

	// Coherent reflection vs electromagnetic roughness k·h.
	s := spectrum.MustGaussian(1.0, 10, 10)
	k := convgen.MustDesign(s, 1, 1, 8, 1e-5)
	surf := convgen.NewGenerator(k, 7).GenerateCentered(256, 256)
	fmt.Println("\ncoherent reflection |⟨e^{2jkf}⟩| at nadir vs Rayleigh prediction:")
	fmt.Printf("%8s %12s %12s\n", "k·h", "measured", "analytic")
	for _, kw := range []float64{0.1, 0.25, 0.5, 1.0, 1.5} {
		got := scatter.CoherentReflection(surf, kw, 0)
		want := scatter.RayleighDamping(kw, 1.0, 0)
		fmt.Printf("%8.2f %12.4f %12.4f\n", kw, got, want)
	}
}
