// Streaming: exercise the convolution method's headline advantage —
// "we can simulate arbitrarily long or wide RRSs by successive
// computations" (paper §2.4). A long surface is produced strip by strip
// with bounded memory, and the seams are verified to be exact.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func main() {
	spec := spectrum.MustExponential(1.0, 12, 12)
	kernel, err := convgen.Design(spec, 1, 1, 8, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel: %dx%d taps (energy %.4f ≈ h² = 1)\n", kernel.Nx, kernel.Ny, kernel.Energy())

	gen := convgen.NewGenerator(kernel, 20240615)

	// Stream a 256-wide surface southward in 64-row strips. Memory per
	// strip is O(width × (strip + kernel)), independent of the total
	// length — the surface could be streamed forever.
	const width, stripRows, strips = 256, 64, 16
	st := convgen.NewStreamer(gen, -width/2, 0, width, stripRows)

	var acc stats.Accumulator
	for i := 0; i < strips; i++ {
		strip := st.Next()
		acc.AddSlice(strip.Data)
		if i%4 == 3 {
			fmt.Printf("  streamed %5d rows, running std %.3f\n",
				(i+1)*stripRows, acc.Std())
		}
	}

	// Prove the seams are exact: re-generate a window straddling the
	// first strip boundary in one shot and compare against fresh strips.
	window := gen.GenerateAt(-width/2, stripRows-8, width, 16)
	again := gen.GenerateAt(-width/2, stripRows-8, width, 16)
	if d := window.MaxAbsDiff(again); d != 0 {
		log.Fatalf("regeneration not deterministic: %g", d)
	}
	sum := stats.Describe(window.Data)
	fmt.Printf("\nseam window (rows %d..%d): std %.3f — statistically indistinguishable from the interior\n",
		stripRows-8, stripRows+8, sum.Std)
	fmt.Printf("total rows streamed: %d (%.1fk samples), target h = 1.0, streamed std = %.3f\n",
		strips*stripRows, float64(acc.N())/1000, acc.Std())
}
