// Propagation: the paper's motivating application — estimate sensor-
// network link budgets across an inhomogeneous rough surface. A 2.4 GHz
// link is swept eastward from a transmitter standing in a calm region
// into progressively rougher terrain, and the usable communication
// range is compared against a homogeneous rough field.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"log"

	"roughsurface/internal/core"
	"roughsurface/internal/propag"
)

func main() {
	// West half: calm ground (h = 0.2 m). East half: boulder field
	// (h = 2.5 m). Grid units are meters.
	zero := 0.0
	scene := core.Scene{
		Nx: 512, Ny: 256, Dx: 2, Dy: 2,
		Method: core.MethodPlate,
		Seed:   11,
		Regions: []core.RegionSpec{
			{Shape: "rect", X1: &zero, T: 30, Spectrum: core.SpectrumSpec{Family: "gaussian", H: 0.2, CL: 15}},
			{Shape: "rect", X0: &zero, T: 30, Spectrum: core.SpectrumSpec{Family: "exponential", H: 2.5, CL: 10}},
		},
	}
	res, err := core.Generate(scene)
	if err != nil {
		log.Fatal(err)
	}
	surf := res.Surface

	link := propag.Link{Lambda: 0.125, TxH: 1.5, RxH: 1.5} // 2.4 GHz
	distances := make([]float64, 0, 16)
	for d := 50.0; d <= 800; d += 50 {
		distances = append(distances, d)
	}

	// Transmitter on the calm side, sweeping east across the boundary.
	results, err := propag.Sweep(surf, -450, 0, 1, 0, distances, link, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link budget sweep, calm → rough terrain (2.4 GHz, antennas 1.5 m):")
	fmt.Printf("%10s %12s %12s %12s %6s\n", "dist [m]", "FSPL [dB]", "diffr [dB]", "total [dB]", "edges")
	for _, r := range results {
		fmt.Printf("%10.0f %12.2f %12.2f %12.2f %6d\n",
			r.Distance, r.FreeSpaceDB, r.DiffractionDB, r.TotalDB, len(r.Edges))
	}

	// Communication range at a 110 dB budget, as in the paper's ref [12]
	// style of analysis.
	budget := 110.0
	fmt.Printf("\nrange at %.0f dB budget: %.0f m\n", budget, propag.RangeAt(results, budget))

	// Average extra loss once the receiver is in the rough region.
	var calm, rough, nc, nr float64
	for _, r := range results {
		if -450+r.Distance < 0 {
			calm += r.DiffractionDB
			nc++
		} else {
			rough += r.DiffractionDB
			nr++
		}
	}
	if nc > 0 && nr > 0 {
		fmt.Printf("mean diffraction loss: %.1f dB over calm ground, %.1f dB into the rough region\n",
			calm/nc, rough/nr)
	}
}
